package replay

// Windowed-ack wire proofs: a farmer.Dial client in WithAckWindow mode must
// mine bit-identical state to sequential feeding — the window reorders ack
// WAITS, never frames — while concurrent readers hammer the striped read
// path of the serving miner, and the whole arrangement must be clean under
// -race.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/tracegen"
)

// TestAckWindowWireBitIdentical: windowed writer + concurrent readers
// against a loopback farmerd serving WithReadStripes; after the Flush
// barrier the remote state fingerprints identical to the sequential
// reference.
func TestAckWindowWireBitIdentical(t *testing.T) {
	tr := tracegen.HP(20000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)

	served, err := farmer.Open(farmer.DefaultConfig(),
		farmer.WithShards(4), farmer.WithReadStripes(8))
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startFarmerd(t, served)
	defer stop()

	ctx := context.Background()
	writer, err := farmer.Dial(ctx, addr, farmer.WithAckWindow(32))
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := farmer.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	// Readers: Predict and CorrelatorList through the wire — landing on the
	// serving miner's striped list snapshot — while the windowed writer
	// streams. Answers race ingestion, so only errors are asserted here; the
	// data proof is the post-Flush fingerprint.
	var stopReads atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; !stopReads.Load(); i++ {
				f := tr.Records[(seed*7919+i)%len(tr.Records)].File
				if _, err := reader.Predict(ctx, f, 4); err != nil {
					t.Errorf("predict during windowed feed: %v", err)
					return
				}
				if _, err := reader.CorrelatorList(ctx, f); err != nil {
					t.Errorf("list during windowed feed: %v", err)
					return
				}
			}
		}(g)
	}

	// Mixed windowed feeding: streaming Feeds plus batches.
	for i := 0; i < 2000; i++ {
		if err := writer.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	for lo := 2000; lo < len(tr.Records); lo += 777 {
		hi := lo + 777
		if hi > len(tr.Records) {
			hi = len(tr.Records)
		}
		if err := writer.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	stopReads.Store(true)
	wg.Wait()

	// The Flush barrier makes "fed" mean "acked": the server holds every
	// record, and the mined state is bit-identical to the sequential miner.
	st, err := writer.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("server fed %d of %d after Flush", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, reader}, tr.FileCount); got != ref {
		t.Fatalf("windowed-ack fingerprint %#x != sequential %#x", got, ref)
	}
	if got := Fingerprint(served.Sharded(), tr.FileCount); got != ref {
		t.Fatalf("served miner fingerprint %#x != sequential %#x", got, ref)
	}
}

// BenchmarkAckWindowFeed measures the acked streaming path with windowed
// acks at several window sizes — the gap-closer for ROADMAP item 2's
// 16.2µs-acked vs 4.8µs-batched spread. Every iteration is one Feed whose
// ack resolves asynchronously; Flush settles the tail before the clock
// stops, so the figure is honest pipeline throughput, not unacked fire-and-
// forget.
func BenchmarkAckWindowFeed(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	for _, win := range []int{8, 32, 128} {
		b.Run(map[int]string{8: "w8", 32: "w32", 128: "w128"}[win], func(b *testing.B) {
			m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
			if err != nil {
				b.Fatal(err)
			}
			addr, stop := startFarmerd(b, m)
			defer stop()
			ctx := context.Background()
			client, err := farmer.Dial(ctx, addr, farmer.WithAckWindow(win))
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Feed(ctx, &tr.Records[i%len(tr.Records)]); err != nil {
					b.Fatal(err)
				}
			}
			if err := client.Flush(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
