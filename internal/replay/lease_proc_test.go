package replay

// Process-level lease proofs (ISSUE 10 acceptance criteria): real farmerd
// binaries, a real SIGKILL, a real network partition.
//
//	(a) TestElectionSIGKILL — kill the leaseholding primary; the follower
//	    self-elects and serves writes within 2x the lease TTL with no
//	    manual promotion anywhere.
//	(b) TestHandoffSIGKILLZeroAckedLoss — SIGKILL the source while a
//	    `farmerctl rebalance`-shaped handoff is in flight and feeds race
//	    it; zero acked records are lost either way the race lands.
//	(c) TestSplitBrainResolvesToHigherEpoch — partition a replicated pair
//	    (the primary's stream runs through a severable proxy); the primary
//	    lapses and refuses writes typed, the follower elects the next
//	    epoch, and the cluster converges on the higher epoch with zero
//	    acked loss.
//
// CI runs all three in the failover replay smoke job.

import (
	"context"
	"io"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// procLeaseTTL is the lease TTL the subprocess tests run at: long enough
// that renewals never flap on a loaded CI runner, short enough that the
// 2xTTL election bound keeps the tests quick.
const procLeaseTTL = 2 * time.Second

func buildFarmerd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "farmerd")
	build := exec.Command("go", "build", "-o", bin, "farmer/cmd/farmerd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building farmerd: %v\n%s", err, out)
	}
	return bin
}

// feedResuming drives the in-doubt resume loop shared by the lease process
// tests: feed tr.Records[lo:] in chunks, and on any failure re-read the
// survivor's position and resume from there, asserting no acked record was
// lost. Transient failures (a follower that has not elected itself yet) are
// retried until deadline.
func feedResuming(t *testing.T, client *farmer.RemoteMiner, tr *trace.Trace, lo int, acked uint64, deadline time.Time) uint64 {
	t.Helper()
	const chunk = 256
	for lo < len(tr.Records) {
		hi := min(lo+chunk, len(tr.Records))
		cctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		err := client.FeedBatch(cctx, tr.Records[lo:hi])
		cancel()
		if err == nil {
			acked = uint64(hi)
			lo = hi
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("no writable daemon before deadline; last feed error: %v", err)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		st, serr := client.Stats(sctx)
		scancel()
		if serr != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if st.Fed < acked {
			t.Fatalf("ACKED RECORD LOST: survivor holds %d records, %d were acked", st.Fed, acked)
		}
		lo = int(st.Fed)
		time.Sleep(100 * time.Millisecond)
	}
	return acked
}

// waitLeaseObserved blocks until the daemon at addr has observed a lease
// term (epoch >= 1) — the precondition for both transfer adoption and
// self-election. The leader announces its term when a follower attaches,
// so this resolves within one round trip in practice.
func waitLeaseObserved(t *testing.T, addr string) {
	t.Helper()
	ctx := context.Background()
	probe, err := farmer.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	start := time.Now()
	for {
		pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
		info, perr := probe.LeaseStatus(pctx)
		pcancel()
		if perr == nil && info.Epoch >= 1 {
			return
		}
		if time.Since(start) > 2*procLeaseTTL {
			t.Fatalf("%s never observed a lease term (status %+v, err %v)", addr, info, perr)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestElectionSIGKILL: a leaseholding primary->follower pair; SIGKILL the
// primary and measure how long the follower takes to self-elect. The only
// reads in the window are lease status polls — no Promote travels, so a
// writable follower proves autonomous election, inside the 2xTTL bound.
func TestElectionSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildFarmerd(t)
	tr := tracegen.HP(30000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()
	ttlArg := procLeaseTTL.String()

	follower := startFarmerdProc(t, bin, "-follow", "-shards", "2", "-lease-ttl", ttlArg)
	defer follower.stop()
	primary := startFarmerdProc(t, bin, "-shards", "2",
		"-replicate-to", follower.addr, "-lease-ttl", ttlArg)
	killed := false
	defer func() {
		if !killed {
			primary.sigkill()
		}
	}()

	client, err := farmer.Dial(ctx, primary.addr, farmer.WithFailover(follower.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Feed a third of the trace, fully acked, then kill the leader.
	third := len(tr.Records) / 3
	const chunk = 256
	for lo := 0; lo < third; lo += chunk {
		if err := client.FeedBatch(ctx, tr.Records[lo:min(lo+chunk, third)]); err != nil {
			t.Fatalf("pre-kill feed at %d: %v", lo, err)
		}
	}
	waitLeaseObserved(t, follower.addr)
	primary.sigkill()
	killed = true
	killedAt := time.Now()

	// Poll the follower's lease status (read-only — nothing here promotes)
	// until it reports itself leader.
	probe, err := farmer.Dial(ctx, follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	var elected time.Duration
	for {
		pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
		info, perr := probe.LeaseStatus(pctx)
		pcancel()
		if perr == nil && info.Self {
			elected = time.Since(killedAt)
			if info.Epoch < 2 {
				t.Fatalf("follower leads at epoch %d, want an election-won epoch >= 2", info.Epoch)
			}
			break
		}
		if time.Since(killedAt) > 4*procLeaseTTL {
			t.Fatalf("follower never self-elected (last status %+v, err %v)", info, perr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if elected > 2*procLeaseTTL {
		t.Fatalf("election took %v, want <= 2x the %v TTL", elected, procLeaseTTL)
	}
	t.Logf("follower self-elected %v after the SIGKILL", elected)

	// Finish the trace through the original client: zero acked loss, final
	// state bit-identical to the sequential reference.
	acked := feedResuming(t, client, tr, third, uint64(third), time.Now().Add(60*time.Second))
	if acked != uint64(len(tr.Records)) {
		t.Fatalf("acked %d of %d records", acked, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, client}, tr.FileCount); got != ref {
		t.Fatalf("elected follower fingerprint %#x != sequential %#x", got, ref)
	}
}

// TestHandoffSIGKILLZeroAckedLoss: SIGKILL the source daemon the instant a
// live handoff is fired, while batches race it. Whichever way the race
// lands — the transfer grant beat the kill, or the follower's own election
// picks up after the TTL — every acked record survives, because acks always
// waited for the follower and the transfer grant rides FIFO behind them.
func TestHandoffSIGKILLZeroAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildFarmerd(t)
	tr := tracegen.HP(30000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()
	ttlArg := procLeaseTTL.String()

	follower := startFarmerdProc(t, bin, "-follow", "-shards", "2", "-lease-ttl", ttlArg)
	defer follower.stop()
	primary := startFarmerdProc(t, bin, "-shards", "2",
		"-replicate-to", follower.addr, "-lease-ttl", ttlArg)
	killed := false
	defer func() {
		if !killed {
			primary.sigkill()
		}
	}()

	client, err := farmer.Dial(ctx, primary.addr, farmer.WithFailover(follower.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	third := len(tr.Records) / 3
	const chunk = 256
	for lo := 0; lo < third; lo += chunk {
		if err := client.FeedBatch(ctx, tr.Records[lo:min(lo+chunk, third)]); err != nil {
			t.Fatalf("pre-handoff feed at %d: %v", lo, err)
		}
	}

	waitLeaseObserved(t, follower.addr)

	// Fire the handoff from a second connection and SIGKILL the source
	// without waiting for the result: the kill lands mid-handoff.
	handoffStarted := make(chan struct{})
	go func() {
		hctx, hcancel := context.WithTimeout(ctx, 30*time.Second)
		defer hcancel()
		if hc, err := farmer.Dial(hctx, primary.addr); err == nil {
			close(handoffStarted)
			_ = hc.Handoff(hctx, follower.addr) // racing the SIGKILL: in doubt by design
			hc.Close()
		} else {
			close(handoffStarted)
		}
	}()
	<-handoffStarted
	primary.sigkill()
	killed = true

	acked := feedResuming(t, client, tr, third, uint64(third), time.Now().Add(60*time.Second))
	if acked != uint64(len(tr.Records)) {
		t.Fatalf("acked %d of %d records", acked, len(tr.Records))
	}

	sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
	st, err := client.Stats(sctx)
	scancel()
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("survivor fed %d, want %d", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, client}, tr.FileCount); got != ref {
		t.Fatalf("survivor fingerprint %#x != sequential %#x", got, ref)
	}
	ictx, icancel := context.WithTimeout(ctx, 10*time.Second)
	info, err := client.LeaseStatus(ictx)
	icancel()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Self || info.Epoch < 2 {
		t.Fatalf("survivor lease %+v, want it leading at an epoch >= 2", info)
	}
}

// tcpProxy is a severable TCP relay: the primary replicates THROUGH it, so
// closing it partitions the pair without killing either process.
type tcpProxy struct {
	lis    net.Listener
	target string

	mu     sync.Mutex
	conns  []net.Conn
	downed bool
}

func startProxy(t *testing.T, target string) *tcpProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &tcpProxy{lis: lis, target: target}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			d, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			p.mu.Lock()
			if p.downed {
				p.mu.Unlock()
				c.Close()
				d.Close()
				continue
			}
			p.conns = append(p.conns, c, d)
			p.mu.Unlock()
			go func() { io.Copy(d, c); d.Close() }()
			go func() { io.Copy(c, d); c.Close() }()
		}
	}()
	return p
}

// sever cuts the partition: no new connections, every relayed one closed.
func (p *tcpProxy) sever() {
	p.mu.Lock()
	p.downed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.lis.Close()
	for _, c := range conns {
		c.Close()
	}
}

// TestSplitBrainResolvesToHigherEpoch: partition a leaseholding pair by
// severing the proxy the replication stream runs through. The primary loses
// its renewal quorum and LAPSES — refusing writes typed, even though it is
// perfectly reachable — while the follower elects epoch 2 and takes the
// traffic. Safety beats availability on the minority side; zero acked
// records are lost; the cluster converges on the higher epoch.
func TestSplitBrainResolvesToHigherEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildFarmerd(t)
	tr := tracegen.HP(30000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()
	ttlArg := procLeaseTTL.String()

	follower := startFarmerdProc(t, bin, "-follow", "-shards", "2", "-lease-ttl", ttlArg)
	defer follower.stop()
	proxy := startProxy(t, follower.addr)
	primary := startFarmerdProc(t, bin, "-shards", "2",
		"-replicate-to", proxy.lis.Addr().String(), "-lease-ttl", ttlArg)
	defer primary.stop()

	client, err := farmer.Dial(ctx, primary.addr, farmer.WithFailover(follower.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	third := len(tr.Records) / 3
	const chunk = 256
	for lo := 0; lo < third; lo += chunk {
		if err := client.FeedBatch(ctx, tr.Records[lo:min(lo+chunk, third)]); err != nil {
			t.Fatalf("pre-partition feed at %d: %v", lo, err)
		}
	}

	waitLeaseObserved(t, follower.addr)
	proxy.sever()
	severedAt := time.Now()

	// The reachable-but-partitioned primary must start refusing writes
	// typed within ~one TTL: renewal quorum is gone, so its lease lapses.
	pc, err := farmer.Dial(ctx, primary.addr)
	if err != nil {
		t.Fatal(err)
	}
	for {
		pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
		info, perr := pc.LeaseStatus(pctx)
		pcancel()
		if perr == nil && !info.Self {
			break // lapsed or deposed: no longer claims the lease
		}
		if time.Since(severedAt) > 4*procLeaseTTL {
			t.Fatalf("partitioned primary still claims the lease after %v (status %+v, err %v)",
				time.Since(severedAt), info, perr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	pc.Close()
	t.Logf("partitioned primary lapsed %v after severing", time.Since(severedAt))

	// The follower self-elects the higher epoch across the partition.
	probe, err := farmer.Dial(ctx, follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	for {
		pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
		info, perr := probe.LeaseStatus(pctx)
		pcancel()
		if perr == nil && info.Self && info.Epoch >= 2 {
			t.Logf("follower leads at epoch %d, %v after severing", info.Epoch, time.Since(severedAt))
			break
		}
		if time.Since(severedAt) > 4*procLeaseTTL {
			t.Fatalf("follower never took the higher epoch (status %+v, err %v)", info, perr)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Finish the trace: the client abandons the lapsed primary for the
	// elected follower with zero acked loss and no double-mining.
	acked := feedResuming(t, client, tr, third, uint64(third), time.Now().Add(60*time.Second))
	if acked != uint64(len(tr.Records)) {
		t.Fatalf("acked %d of %d records", acked, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, client}, tr.FileCount); got != ref {
		t.Fatalf("surviving side fingerprint %#x != sequential %#x", got, ref)
	}
	ictx, icancel := context.WithTimeout(ctx, 10*time.Second)
	info, err := client.LeaseStatus(ictx)
	icancel()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Self || info.Epoch < 2 {
		t.Fatalf("writes settled on %+v, want the epoch >= 2 leader", info)
	}
}
