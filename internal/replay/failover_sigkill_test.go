package replay

// The process-level failover proof: real farmerd binaries, a real SIGKILL.
// The in-process tests simulate the crash by cutting connections; this one
// builds cmd/farmerd, runs a primary→follower pair as separate processes,
// SIGKILLs the primary mid-trace, and drives the multi-address client
// through the failover. CI runs it as the failover replay smoke job.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/tracegen"
)

// farmerdProc is one farmerd child process.
type farmerdProc struct {
	cmd         *exec.Cmd
	addr        string
	metricsAddr string // set when launched with -metrics-addr
	done        chan error
}

// startFarmerdProc launches a farmerd child and waits for its "serving on"
// line to learn the kernel-assigned port.
func startFarmerdProc(t *testing.T, bin string, args ...string) *farmerdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &farmerdProc{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				fields := strings.Fields(line[i+len("serving on "):])
				if len(fields) > 0 {
					select {
					case addrCh <- fields[0]:
					default:
					}
				}
			}
			// The metrics endpoint is announced before "serving on", so the
			// buffered send below is always drained by the time addr arrives.
			if i := strings.Index(line, "metrics endpoint on http://"); i >= 0 {
				rest := line[i+len("metrics endpoint on http://"):]
				if j := strings.Index(rest, "/"); j > 0 {
					select {
					case metricsCh <- rest[:j]:
					default:
					}
				}
			}
			t.Logf("[%s] %s", filepath.Base(cmd.Path), line)
		}
		io.Copy(io.Discard, stderr)
	}()
	go func() { p.done <- cmd.Wait() }()
	select {
	case p.addr = <-addrCh:
		select {
		case p.metricsAddr = <-metricsCh:
		default:
		}
	case err := <-p.done:
		t.Fatalf("farmerd exited before serving: %v", err)
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatal("farmerd never reported its address")
	}
	return p
}

func (p *farmerdProc) sigkill() {
	p.cmd.Process.Signal(syscall.SIGKILL)
	<-p.done
}

func (p *farmerdProc) stop() {
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		<-p.done
	}
}

// TestFailoverSIGKILL: start primary+follower farmerd processes, SIGKILL
// the primary mid-trace while feeds are in flight, finish the trace against
// the promoted follower via multi-address Dial, and assert zero
// acked-record loss plus a final fingerprint equal to the sequential
// reference (no loss AND no double-mining).
func TestFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "farmerd")
	build := exec.Command("go", "build", "-o", bin, "farmer/cmd/farmerd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building farmerd: %v\n%s", err, out)
	}

	tr := tracegen.HP(30000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()

	follower := startFarmerdProc(t, bin, "-follow", "-shards", "2")
	defer follower.stop()
	primary := startFarmerdProc(t, bin, "-shards", "2", "-replicate-to", follower.addr)
	killed := false
	defer func() {
		if !killed {
			primary.sigkill()
		}
	}()

	client, err := farmer.Dial(ctx, primary.addr, farmer.WithFailover(follower.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Kill from a side goroutine once a third of the trace is acked, so the
	// SIGKILL lands while feeds are genuinely in flight.
	ackedCh := make(chan uint64, 64)
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for acked := range ackedCh {
			if acked >= uint64(len(tr.Records))/3 {
				primary.sigkill()
				return
			}
		}
	}()

	const chunk = 256
	acked := uint64(0)
	lo := 0
	failedOver := false
	for lo < len(tr.Records) {
		hi := min(lo+chunk, len(tr.Records))
		cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := client.FeedBatch(cctx, tr.Records[lo:hi])
		cancel()
		if err == nil {
			acked = uint64(hi)
			lo = hi
			select {
			case ackedCh <- acked:
			default:
			}
			continue
		}
		if !errors.Is(err, farmer.ErrDisconnected) {
			t.Fatalf("feed failed with %v at record %d", err, lo)
		}
		failedOver = true
		// In-doubt batch: the killed primary may or may not have replicated
		// it. Resume from the survivor's exact record count.
		st, serr := client.Stats(ctx)
		if serr != nil {
			t.Fatalf("failover stats: %v", serr)
		}
		if st.Fed < acked {
			t.Fatalf("ACKED RECORD LOST: survivor holds %d records, %d were acked", st.Fed, acked)
		}
		lo = int(st.Fed)
	}
	close(ackedCh)
	<-killDone
	killed = true
	if !failedOver {
		t.Fatal("the client never observed the primary's death — the kill landed too late")
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("survivor fed %d, want %d", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, client}, tr.FileCount); got != ref {
		t.Fatalf("promoted follower fingerprint %#x != sequential %#x", got, ref)
	}
}
