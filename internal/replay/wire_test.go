package replay

// The wire-transport half of the replay harness's correctness claims: a
// miner served by a live farmerd over loopback TCP must mine bit-identical
// state to the in-process ShardedModel and to the paper-exact sequential
// Model, whether the trace arrives through farmer.Dial (client feeding) or
// through rpc.NetOwner (a dispatcher in one process routing mining events
// to servers in others — hust.NewGlobalCluster's topology as real sockets).

import (
	"context"
	"net"
	"testing"
	"time"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/partition"
	"farmer/internal/rpc"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// startFarmerd serves m on a loopback listener — a live farmerd in every
// respect but the process boundary (same serve loop cmd/farmerd runs).
func startFarmerd(t testing.TB, m *farmer.LocalMiner) (addr string, stop func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, m, farmer.ServeConfig{}) }()
	return lis.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("farmerd serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("farmerd did not drain")
		}
		m.Close()
	}
}

// remoteLister adapts a Dial client to the Fingerprint read surface.
type remoteLister struct {
	t testing.TB
	m *farmer.RemoteMiner
}

func (l remoteLister) CorrelatorList(f trace.FileID) []core.Correlator {
	list, err := l.m.CorrelatorList(context.Background(), f)
	if err != nil {
		l.t.Fatalf("remote list %d: %v", f, err)
	}
	return list
}

// TestWireLoopbackBitIdentical feeds the same trace to an in-process
// ShardedModel and to a farmer.Dial client backed by a live loopback
// farmerd, and asserts all three mined models — sequential reference,
// local sharded, remote — are bit-identical.
func TestWireLoopbackBitIdentical(t *testing.T) {
	tr := tracegen.HP(8000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)

	cfg := farmer.DefaultConfig()
	local, err := farmer.Open(cfg, farmer.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if err := local.FeedBatch(context.Background(), tr.Records); err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(local.Sharded(), tr.FileCount); got != ref {
		t.Fatalf("local sharded fingerprint %#x != sequential %#x", got, ref)
	}

	served, err := farmer.Open(cfg, farmer.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startFarmerd(t, served)
	defer stop()
	client, err := farmer.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Mixed feeding: streaming Feeds plus batches, as a real MDS would.
	ctx := context.Background()
	for i := 0; i < 500; i++ {
		if err := client.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	const chunk = 1024
	for lo := 500; lo < len(tr.Records); lo += chunk {
		hi := min(lo+chunk, len(tr.Records))
		if err := client.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("remote fed %d, want %d", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, client}, tr.FileCount); got != ref {
		t.Fatalf("remote fingerprint %#x != sequential %#x", got, ref)
	}
}

// TestWireTwoProcessTopology runs hust.NewGlobalCluster's shape over real
// sockets: one dispatcher sequences the stream and routes each partition's
// mining events through rpc.NetOwner to its own farmerd, so two servers
// collectively mine one global model — bit-identical to the sequential
// mine.
func TestWireTwoProcessTopology(t *testing.T) {
	tr := tracegen.HP(6000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	const servers = 2

	miners := make([]*farmer.LocalMiner, servers)
	clients := make([]*rpc.Client, servers)
	owners := make([]*rpc.NetOwner, servers)
	for i := range miners {
		m, err := farmer.Open(farmer.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		miners[i] = m
		addr, stop := startFarmerd(t, m)
		defer stop()
		c, err := rpc.Dial(context.Background(), addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		owners[i] = rpc.NewNetOwner(c, 0)
	}

	d := partition.NewDispatcher(partition.Config{
		Owners:      servers,
		Partitioner: partition.Hash,
		Mask:        mc.Mask,
		PathAlg:     mc.PathAlg,
		Graph:       mc.Graph,
	})
	// Stage per-owner batches like ShardedModel.FeedBatch, shipping a frame
	// whenever a batch fills.
	const chunk = 256
	bufs := make([][]partition.Event, servers)
	emit := func(owner int, ev partition.Event) {
		bufs[owner] = append(bufs[owner], ev)
		if len(bufs[owner]) >= chunk {
			owners[owner].ApplyEvents(bufs[owner])
			bufs[owner] = bufs[owner][:0]
		}
	}
	for i := range tr.Records {
		d.Dispatch(&tr.Records[i], emit)
	}
	for i := range owners {
		owners[i].ApplyEvents(bufs[i])
		if err := owners[i].Flush(); err != nil {
			t.Fatalf("owner %d: %v", i, err)
		}
	}

	// Each file's list lives on the server the partitioner routes it to;
	// the union of the two remote models is the global model.
	routed := routedLister{
		t:    t,
		part: partition.Hash,
		ms:   clients,
	}
	if got := Fingerprint(routed, tr.FileCount); got != ref {
		t.Fatalf("two-process fingerprint %#x != sequential %#x", got, ref)
	}
	// Sanity: state really is partitioned, not mirrored — both servers hold
	// a strict subset.
	for i, m := range miners {
		st := m.Sharded().Stats()
		if st.Lists == 0 {
			t.Fatalf("server %d mined nothing", i)
		}
	}
}

// routedLister reads each file's list from the server owning its partition.
type routedLister struct {
	t    testing.TB
	part partition.Partitioner
	ms   []*rpc.Client
}

func (l routedLister) CorrelatorList(f trace.FileID) []core.Correlator {
	list, err := l.ms[l.part(f, len(l.ms))].CorrelatorList(context.Background(), f)
	if err != nil {
		l.t.Fatalf("remote list %d: %v", f, err)
	}
	return list
}

// BenchmarkLoopbackFeed measures the serving path's unit cost: one Feed
// round trip (record encode, frame, TCP loopback, mine, ack) against a live
// farmerd.
func BenchmarkLoopbackFeed(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	addr, stop := startFarmerd(b, m)
	defer stop()
	client, err := farmer.Dial(context.Background(), addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Feed(ctx, &tr.Records[i%len(tr.Records)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkLoopbackFeedBatch measures the batched serving path: 1024
// records per frame, server mining with all shards in parallel.
func BenchmarkLoopbackFeedBatch(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	addr, stop := startFarmerd(b, m)
	defer stop()
	client, err := farmer.Dial(context.Background(), addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	const chunk = 1024
	b.ResetTimer()
	fed := 0
	for fed < b.N {
		lo := fed % len(tr.Records)
		hi := min(lo+chunk, len(tr.Records))
		if hi-lo > b.N-fed {
			hi = lo + (b.N - fed)
		}
		if err := client.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
			b.Fatal(err)
		}
		fed += hi - lo
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
