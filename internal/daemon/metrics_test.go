package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"farmer"
)

// scrape GETs one metrics URL and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(body)
}

// metricValue sums every series of name in a Prometheus text body (labeled
// series included) and reports whether any was present.
func metricValue(body, name string) (float64, bool) {
	var sum float64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer metric name sharing the prefix
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return 0, false
		}
		sum += v
		found = true
	}
	return sum, found
}

// TestMetricsEndpointLiveScrape scrapes /metrics continuously while a
// windowed-ack client streams a live ingest at it: every monotone series
// must never move backwards across scrapes (no torn reads — the scrape
// path runs concurrently with the hot path under -race in CI), and the
// final sample must account for exactly the fed trace.
func TestMetricsEndpointLiveScrape(t *testing.T) {
	addr, mAddr := freePort(t), freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var lc logCollector
	go func() {
		done <- Run(ctx, Options{Addr: addr, MetricsAddr: mAddr, Shards: 2, PrefetchK: 2, Logf: lc.logf})
	}()
	waitUp(t, addr)
	waitUp(t, mAddr)

	tr, err := farmer.Generate(farmer.HP(12000))
	if err != nil {
		t.Fatal(err)
	}
	client, err := farmer.Dial(ctx, addr, farmer.WithAckWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	feedErr := make(chan error, 1)
	go func() {
		const chunk = 512
		for lo := 0; lo < len(tr.Records); lo += chunk {
			hi := min(lo+chunk, len(tr.Records))
			if err := client.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
				feedErr <- err
				return
			}
		}
		feedErr <- client.Flush(ctx)
	}()

	// Scrape while the feed is live; monotone counters must never regress.
	monotone := []string{
		"farmer_ingest_records_total",
		"farmer_rpc_frames_total",
		"farmer_rpc_bytes_read_total",
		"farmer_tap_dropped_total",
		"farmer_predict_predictions_total",
	}
	last := make(map[string]float64, len(monotone))
	feeding := true
	for feeding {
		select {
		case err := <-feedErr:
			if err != nil {
				t.Fatalf("windowed feed: %v", err)
			}
			feeding = false
		default:
			body := scrape(t, "http://"+mAddr+"/metrics")
			for _, name := range monotone {
				v, ok := metricValue(body, name)
				if !ok {
					t.Fatalf("metric %s missing from scrape:\n%s", name, body)
				}
				if v < last[name] {
					t.Fatalf("metric %s went backwards: %v -> %v", name, last[name], v)
				}
				last[name] = v
			}
		}
	}

	// Final state: the ingest counter matches the trace exactly, the wire
	// accounting saw traffic, and the per-shard series are all present.
	body := scrape(t, "http://"+mAddr+"/metrics")
	if v, _ := metricValue(body, "farmer_ingest_records_total"); v != float64(len(tr.Records)) {
		t.Fatalf("farmer_ingest_records_total = %v, want %d", v, len(tr.Records))
	}
	if v, _ := metricValue(body, "farmer_rpc_frames_total"); v < float64(len(tr.Records))/512 {
		t.Fatalf("farmer_rpc_frames_total = %v, too low for the fed chunks", v)
	}
	for shard := 0; shard < 2; shard++ {
		series := fmt.Sprintf("farmer_shard_mailbox_depth{shard=%q}", strconv.Itoa(shard))
		if !strings.Contains(body, series) {
			t.Fatalf("per-shard series %s missing:\n%s", series, body)
		}
	}
	if !strings.Contains(body, "farmer_checkpoint_age_seconds") {
		t.Fatalf("checkpoint age gauge missing:\n%s", body)
	}

	// The JSON view decodes and carries the same ingest count.
	var parsed struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(scrape(t, "http://"+mAddr+"/metrics.json")), &parsed); err != nil {
		t.Fatalf("metrics.json did not parse: %v", err)
	}
	jsonIngest := -1.0
	for _, m := range parsed.Metrics {
		if m.Name == "farmer_ingest_records_total" {
			jsonIngest = m.Value
		}
	}
	if jsonIngest != float64(len(tr.Records)) {
		t.Fatalf("metrics.json farmer_ingest_records_total = %v, want %d", jsonIngest, len(tr.Records))
	}

	client.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon run: %v", err)
	}
	if !lc.contains("metrics endpoint on") {
		t.Fatalf("daemon never logged the metrics endpoint: %v", lc.lines)
	}
}

// TestMetricsAddrConflict: a taken metrics port is a runtime failure, not a
// silent no-endpoint daemon.
func TestMetricsAddrConflict(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	err = Run(context.Background(), Options{Addr: freePort(t), MetricsAddr: lis.Addr().String()})
	if err == nil || !strings.Contains(err.Error(), "metrics listen") {
		t.Fatalf("err = %v, want a metrics listen failure", err)
	}
}
