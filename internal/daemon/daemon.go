// Package daemon is the shared serve bootstrap behind cmd/farmerd and
// `farmerctl serve`: flag-level validation, store repair/open/load, the
// listener, signal-driven graceful drain, and prefetch-pipeline accounting
// live here once, so the two command-line entry points cannot drift.
package daemon

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"farmer"
	"farmer/internal/rpc"
)

// ErrUsage marks option mistakes the commands report as exit code 2.
var ErrUsage = errors.New("usage error")

// Options parameterises one serving daemon. Zero values mean the feature is
// off; Weight/Strength zero means the paper default.
type Options struct {
	Addr        string        // TCP listen address (required)
	MetricsAddr string        // HTTP metrics listen address ("" = no endpoint)
	StorePath   string        // WAL path; "" = volatile miner
	Load        bool          // restore persisted state at startup (needs StorePath)
	Repair      bool          // truncate a corrupt WAL before opening (needs StorePath)
	Shards      int           // miner stripes (0/1 = single-lock)
	ReadStripes int           // striped read-path snapshot stripes (0 = off)
	Partition   string        // "stripe", "hash" or "group" ("" = stripe)
	Ckpt        time.Duration // periodic checkpoint interval (needs StorePath)
	PrefetchK   int           // attach the async prefetch pipeline (0 = off)
	Weight      *float64      // correlation weight p (nil = paper default)
	Strength    *float64      // max_strength threshold (nil = paper default)
	Drain       time.Duration // graceful shutdown bound (0 = Serve default)
	// ReplicateTo lists follower farmerd addresses this daemon replicates
	// to (it serves as the replication primary). Follow starts the daemon
	// as a promotable follower instead; the two are mutually exclusive.
	// A follower started with Load resumes from its own checkpoint: the
	// primary catches it up by replaying just the records it missed (delta
	// catch-up) when it can, shipping a full cut otherwise.
	ReplicateTo []string
	Follow      bool
	// CatchupTail is how many recent records a primary retains for delta
	// catch-up (0 = default 65536, negative = full cuts only). Only
	// meaningful with ReplicateTo.
	CatchupTail int
	// LeaseTTL enables epoch-versioned write leases: the daemon only
	// accepts writes while holding a live lease, renews it over the
	// replication stream, and a follower whose lease view expires holds an
	// election among LeasePeers instead of waiting for a manual promote.
	// Zero keeps the historical availability-wins behaviour.
	LeaseTTL time.Duration
	// LeasePeers lists the other farmerd protocol addresses that vote in
	// elections. Requires LeaseTTL.
	LeasePeers []string

	// TLSCert/TLSKey name a PEM certificate/key pair; both or neither.
	// When set, the daemon serves the wire protocol over TLS.
	TLSCert string
	TLSKey  string
	// Auth lists static bearer-token grants, each "token=tenant,tenant"
	// ("*" grants every tenant). A non-empty list makes authentication
	// mandatory: connections must open with a hello carrying a known token
	// before any frame dispatches.
	Auth []string
	// ReplicaToken is presented when dialing ReplicateTo followers that
	// themselves run with Auth (it must be granted "*" there).
	ReplicaToken string

	// TenantsDir turns the daemon multi-tenant: frames carrying a tenant
	// id lazily open one miner per tenant, persisted under
	// TenantsDir/<tenant>/store.wal. The remaining Tenant* knobs only
	// apply with TenantsDir set.
	TenantsDir string
	// MaxTenants caps concurrently live named tenants (0 = unlimited).
	MaxTenants int
	// TenantIdle evicts a named tenant untouched for this long (0 = never):
	// checkpointed to its store, closed, transparently reopened on the
	// next frame.
	TenantIdle time.Duration
	// TenantMaxShards / TenantMaxMailbox / TenantMaxMemory are each
	// tenant's admission budget: shard count, prefetch mailbox depth, and
	// model footprint in bytes (0 = unlimited).
	TenantMaxShards  int
	TenantMaxMailbox int
	TenantMaxMemory  int64

	Logf func(format string, args ...any)
}

// ParseAuthSpec splits one -auth grant "token=tenant,tenant" (or
// "token=*") into its token and tenant list, validating tenant ids.
func ParseAuthSpec(spec string) (token string, tenants []string, err error) {
	token, list, ok := strings.Cut(spec, "=")
	if !ok || token == "" {
		return "", nil, fmt.Errorf("auth grant %q is not token=tenant[,tenant...]", spec)
	}
	for _, t := range strings.Split(list, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if t != "*" {
			if err := rpc.ValidTenant(t); err != nil {
				return "", nil, fmt.Errorf("auth grant %q: %w", spec, err)
			}
		}
		tenants = append(tenants, t)
	}
	if len(tenants) == 0 {
		return "", nil, fmt.Errorf("auth grant %q grants no tenants (use token=* for all)", spec)
	}
	return token, tenants, nil
}

// Run serves a miner built from o until SIGINT/SIGTERM (or ctx cancels),
// then drains gracefully. Errors wrapping ErrUsage are option mistakes;
// everything else is a runtime failure.
func Run(ctx context.Context, o Options) error {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.StorePath == "" {
		switch {
		case o.Load:
			return fmt.Errorf("%w: -load requires -store", ErrUsage)
		case o.Repair:
			return fmt.Errorf("%w: -repair requires -store", ErrUsage)
		case o.Ckpt > 0:
			return fmt.Errorf("%w: -checkpoint requires -store", ErrUsage)
		}
	}
	if o.Shards < 0 {
		return fmt.Errorf("%w: -shards %d is negative", ErrUsage, o.Shards)
	}
	if o.Follow && len(o.ReplicateTo) > 0 {
		return fmt.Errorf("%w: -follow and -replicate-to are mutually exclusive (chained replication is not supported)", ErrUsage)
	}
	for _, addr := range o.ReplicateTo {
		if addr == "" {
			return fmt.Errorf("%w: -replicate-to contains an empty address", ErrUsage)
		}
	}
	if len(o.LeasePeers) > 0 && o.LeaseTTL <= 0 {
		return fmt.Errorf("%w: -lease-peers requires -lease-ttl", ErrUsage)
	}
	for _, addr := range o.LeasePeers {
		if addr == "" {
			return fmt.Errorf("%w: -lease-peers contains an empty address", ErrUsage)
		}
	}
	if (o.TLSCert == "") != (o.TLSKey == "") {
		return fmt.Errorf("%w: -tls-cert and -tls-key must be given together", ErrUsage)
	}
	if o.TenantsDir == "" {
		switch {
		case o.MaxTenants != 0:
			return fmt.Errorf("%w: -max-tenants requires -tenants-dir", ErrUsage)
		case o.TenantIdle != 0:
			return fmt.Errorf("%w: -tenant-idle requires -tenants-dir", ErrUsage)
		case o.TenantMaxShards != 0 || o.TenantMaxMailbox != 0 || o.TenantMaxMemory != 0:
			return fmt.Errorf("%w: tenant budget flags require -tenants-dir", ErrUsage)
		}
	}
	authTokens := make(map[string][]string, len(o.Auth))
	for _, spec := range o.Auth {
		token, tenants, err := ParseAuthSpec(spec)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUsage, err)
		}
		authTokens[token] = append(authTokens[token], tenants...)
	}
	if len(authTokens) == 0 {
		authTokens = nil
	}
	var tlsCfg *tls.Config
	if o.TLSCert != "" {
		cert, err := tls.LoadX509KeyPair(o.TLSCert, o.TLSKey)
		if err != nil {
			return fmt.Errorf("loading TLS key pair: %w", err)
		}
		tlsCfg = &tls.Config{Certificates: []tls.Certificate{cert}}
	}
	if o.Partition == "" {
		o.Partition = "stripe"
	}
	part, err := farmer.PartitionerByName(o.Partition)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUsage, err)
	}

	cfg := farmer.DefaultConfig()
	if o.Weight != nil {
		cfg.Weight = *o.Weight
	}
	if o.Strength != nil {
		cfg.MaxStrength = *o.Strength
	}

	if o.Repair {
		kept, dropped, err := farmer.RepairStore(o.StorePath)
		if err != nil {
			return fmt.Errorf("repairing store: %w", err)
		}
		if dropped > 0 {
			logf("repaired %s: kept %d records, dropped %d corrupt tail bytes", o.StorePath, kept, dropped)
		}
	}

	opts := []farmer.Option{farmer.WithShards(o.Shards), farmer.WithPartitioner(part)}
	if o.ReadStripes > 0 {
		opts = append(opts, farmer.WithReadStripes(o.ReadStripes))
	}
	if o.StorePath != "" {
		opts = append(opts, farmer.WithStore(o.StorePath))
		if o.Load {
			opts = append(opts, farmer.WithLoad())
		}
	}
	if o.PrefetchK > 0 {
		opts = append(opts, farmer.WithPrefetcher(nil, farmer.PrefetchConfig{K: o.PrefetchK}))
	}
	miner, err := farmer.Open(cfg, opts...)
	if err != nil {
		return err
	}
	defer miner.Close()

	lis, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}

	// The metrics endpoint is plain HTTP on its own listener — operators
	// point Prometheus (or curl) at it without speaking the wire protocol,
	// and it stays readable while the protocol port is TLS/auth-gated.
	var obsReg *farmer.MetricsRegistry
	if o.MetricsAddr != "" {
		obsReg = farmer.NewMetricsRegistry()
		mlis, err := net.Listen("tcp", o.MetricsAddr)
		if err != nil {
			lis.Close()
			return fmt.Errorf("metrics listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = obsReg.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = obsReg.WriteJSON(w)
		})
		msrv := &http.Server{Handler: mux}
		go func() { _ = msrv.Serve(mlis) }()
		defer msrv.Close()
		logf("metrics endpoint on http://%s/metrics", mlis.Addr())
	}
	role := "standalone"
	switch {
	case o.Follow:
		role = "follower"
	case len(o.ReplicateTo) > 0:
		role = fmt.Sprintf("primary->%v", o.ReplicateTo)
	}
	logf("serving on %s (shards=%d partition=%s store=%q role=%s tenants=%q tls=%t auth=%d)",
		lis.Addr(), o.Shards, o.Partition, o.StorePath, role, o.TenantsDir, tlsCfg != nil, len(authTokens))

	var tenantsCfg *farmer.TenantsConfig
	if o.TenantsDir != "" {
		tenantsCfg = &farmer.TenantsConfig{
			Dir:    o.TenantsDir,
			Config: cfg,
			Shards: o.Shards,
			Budget: farmer.TenantBudget{
				MaxShards:      o.TenantMaxShards,
				MaxMailbox:     o.TenantMaxMailbox,
				MaxMemoryBytes: o.TenantMaxMemory,
			},
			MaxTenants: o.MaxTenants,
			IdleAfter:  o.TenantIdle,
		}
		if o.PrefetchK > 0 {
			tenantsCfg.Prefetch = &farmer.PrefetchConfig{K: o.PrefetchK}
		}
	}

	sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = farmer.Serve(sctx, lis, miner, farmer.ServeConfig{
		Checkpoint:   o.Ckpt,
		DrainTimeout: o.Drain,
		ReplicateTo:  o.ReplicateTo,
		CatchupTail:  o.CatchupTail,
		Follower:     o.Follow,
		LeaseTTL:     o.LeaseTTL,
		LeasePeers:   o.LeasePeers,
		ReplicaToken: o.ReplicaToken,
		TLS:          tlsCfg,
		AuthTokens:   authTokens,
		Tenants:      tenantsCfg,
		Obs:          obsReg,
		Logf:         logf,
	})
	if pf := miner.Prefetcher(); pf != nil {
		pf.Stop()
		st := pf.Stats()
		logf("prefetch pipeline: %d events, %d predicted, %d submitted, %d dropped",
			st.Events, st.Predicted, st.Submitted, st.TapDropped+st.QueueDropped)
	}
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logf("drained cleanly")
	return nil
}
