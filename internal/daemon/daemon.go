// Package daemon is the shared serve bootstrap behind cmd/farmerd and
// `farmerctl serve`: flag-level validation, store repair/open/load, the
// listener, signal-driven graceful drain, and prefetch-pipeline accounting
// live here once, so the two command-line entry points cannot drift.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"farmer"
)

// ErrUsage marks option mistakes the commands report as exit code 2.
var ErrUsage = errors.New("usage error")

// Options parameterises one serving daemon. Zero values mean the feature is
// off; Weight/Strength zero means the paper default.
type Options struct {
	Addr      string        // TCP listen address (required)
	StorePath string        // WAL path; "" = volatile miner
	Load      bool          // restore persisted state at startup (needs StorePath)
	Repair    bool          // truncate a corrupt WAL before opening (needs StorePath)
	Shards    int           // miner stripes (0/1 = single-lock)
	Partition string        // "stripe", "hash" or "group" ("" = stripe)
	Ckpt      time.Duration // periodic checkpoint interval (needs StorePath)
	PrefetchK int           // attach the async prefetch pipeline (0 = off)
	Weight    *float64      // correlation weight p (nil = paper default)
	Strength  *float64      // max_strength threshold (nil = paper default)
	Drain     time.Duration // graceful shutdown bound (0 = Serve default)
	Logf      func(format string, args ...any)
}

// Run serves a miner built from o until SIGINT/SIGTERM (or ctx cancels),
// then drains gracefully. Errors wrapping ErrUsage are option mistakes;
// everything else is a runtime failure.
func Run(ctx context.Context, o Options) error {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.StorePath == "" {
		switch {
		case o.Load:
			return fmt.Errorf("%w: -load requires -store", ErrUsage)
		case o.Repair:
			return fmt.Errorf("%w: -repair requires -store", ErrUsage)
		case o.Ckpt > 0:
			return fmt.Errorf("%w: -checkpoint requires -store", ErrUsage)
		}
	}
	if o.Shards < 0 {
		return fmt.Errorf("%w: -shards %d is negative", ErrUsage, o.Shards)
	}
	if o.Partition == "" {
		o.Partition = "stripe"
	}
	part, err := farmer.PartitionerByName(o.Partition)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUsage, err)
	}

	cfg := farmer.DefaultConfig()
	if o.Weight != nil {
		cfg.Weight = *o.Weight
	}
	if o.Strength != nil {
		cfg.MaxStrength = *o.Strength
	}

	if o.Repair {
		kept, dropped, err := farmer.RepairStore(o.StorePath)
		if err != nil {
			return fmt.Errorf("repairing store: %w", err)
		}
		if dropped > 0 {
			logf("repaired %s: kept %d records, dropped %d corrupt tail bytes", o.StorePath, kept, dropped)
		}
	}

	opts := []farmer.Option{farmer.WithShards(o.Shards), farmer.WithPartitioner(part)}
	if o.StorePath != "" {
		opts = append(opts, farmer.WithStore(o.StorePath))
		if o.Load {
			opts = append(opts, farmer.WithLoad())
		}
	}
	if o.PrefetchK > 0 {
		opts = append(opts, farmer.WithPrefetcher(nil, farmer.PrefetchConfig{K: o.PrefetchK}))
	}
	miner, err := farmer.Open(cfg, opts...)
	if err != nil {
		return err
	}
	defer miner.Close()

	lis, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	logf("serving on %s (shards=%d partition=%s store=%q)", lis.Addr(), o.Shards, o.Partition, o.StorePath)

	sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = farmer.Serve(sctx, lis, miner, farmer.ServeConfig{
		Checkpoint:   o.Ckpt,
		DrainTimeout: o.Drain,
	})
	if pf := miner.Prefetcher(); pf != nil {
		pf.Stop()
		st := pf.Stats()
		logf("prefetch pipeline: %d events, %d predicted, %d submitted, %d dropped",
			st.Events, st.Predicted, st.Submitted, st.TapDropped+st.QueueDropped)
	}
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logf("drained cleanly")
	return nil
}
