package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"farmer"
)

// freePort reserves a loopback port and releases it for the daemon to take
// (a small race, but the kernel rarely reissues the port that fast).
func freePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// logCollector is a concurrency-safe Logf sink.
type logCollector struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCollector) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCollector) contains(sub string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func TestRunUsageValidation(t *testing.T) {
	ctx := context.Background()
	cases := []Options{
		{Addr: "x", Load: true},                               // -load without -store
		{Addr: "x", Repair: true},                             // -repair without -store
		{Addr: "x", Ckpt: time.Second},                        // -checkpoint without -store
		{Addr: "x", Shards: -1},                               // negative shards
		{Addr: "x", Partition: "bogus"},                       // unknown partitioner
		{Addr: "x", Follow: true, ReplicateTo: []string{"y"}}, // follower replicating onward
		{Addr: "x", ReplicateTo: []string{""}},                // empty follower address
		{Addr: "x", TLSCert: "cert.pem"},                      // cert without key
		{Addr: "x", TLSKey: "key.pem"},                        // key without cert
		{Addr: "x", MaxTenants: 4},                            // tenant knob without -tenants-dir
		{Addr: "x", TenantIdle: time.Minute},                  // tenant knob without -tenants-dir
		{Addr: "x", TenantMaxMemory: 1 << 20},                 // budget without -tenants-dir
		{Addr: "x", Auth: []string{"no-equals"}},              // malformed auth grant
		{Addr: "x", Auth: []string{"=tenant"}},                // empty token
		{Addr: "x", Auth: []string{"tok="}},                   // empty grant
		{Addr: "x", Auth: []string{"tok=bad tenant"}},         // invalid tenant id in grant
	}
	for i, o := range cases {
		if err := Run(ctx, o); !errors.Is(err, ErrUsage) {
			t.Fatalf("case %d: err = %v, want ErrUsage", i, err)
		}
	}
}

func TestParseAuthSpec(t *testing.T) {
	tok, tenants, err := ParseAuthSpec("root=*")
	if err != nil || tok != "root" || len(tenants) != 1 || tenants[0] != "*" {
		t.Fatalf("root=*: %q %v %v", tok, tenants, err)
	}
	tok, tenants, err = ParseAuthSpec("t1=alpha,beta,")
	if err != nil || tok != "t1" || len(tenants) != 2 || tenants[0] != "alpha" || tenants[1] != "beta" {
		t.Fatalf("t1=alpha,beta,: %q %v %v", tok, tenants, err)
	}
	for _, bad := range []string{"", "noeq", "=x", "tok=", "tok=.dot", "tok=sp ace"} {
		if _, _, err := ParseAuthSpec(bad); err == nil {
			t.Fatalf("ParseAuthSpec(%q) accepted", bad)
		}
	}
}

// TestRunReplicatedPair runs a follower and a primary through the full
// daemon bootstrap (the farmerd code path minus flag parsing), drives the
// pair over the wire, kills the primary, and finishes against the promoted
// follower — with the follower checkpointing the replicated state into its
// OWN store on drain.
func TestRunReplicatedPair(t *testing.T) {
	dir := t.TempDir()
	fAddr, pAddr := freePort(t), freePort(t)
	fWAL := filepath.Join(dir, "follower.wal")
	var flog, plog logCollector

	fCtx, fCancel := context.WithCancel(context.Background())
	defer fCancel()
	fDone := make(chan error, 1)
	go func() {
		fDone <- Run(fCtx, Options{Addr: fAddr, Follow: true, Shards: 2, StorePath: fWAL, Logf: flog.logf})
	}()

	// Wait for the follower to listen, then start the primary (which must
	// attach at startup).
	waitUp(t, fAddr)
	pCtx, pCancel := context.WithCancel(context.Background())
	defer pCancel()
	pDone := make(chan error, 1)
	go func() {
		pDone <- Run(pCtx, Options{Addr: pAddr, ReplicateTo: []string{fAddr}, Shards: 2, Logf: plog.logf})
	}()
	waitUp(t, pAddr)

	ctx := context.Background()
	tr, err := farmer.Generate(farmer.HP(4000))
	if err != nil {
		t.Fatal(err)
	}
	client, err := farmer.Dial(ctx, pAddr, farmer.WithFailover(fAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	half := len(tr.Records) / 2
	if err := client.FeedBatch(ctx, tr.Records[:half]); err != nil {
		t.Fatal(err)
	}

	// Kill the primary; the client fails over and the follower promotes.
	pCancel()
	if err := <-pDone; err != nil {
		t.Fatalf("primary run: %v", err)
	}
	lo := half
	for lo < len(tr.Records) {
		err := client.FeedBatch(ctx, tr.Records[lo:])
		if err == nil {
			lo = len(tr.Records)
			break
		}
		if !errors.Is(err, farmer.ErrDisconnected) {
			t.Fatalf("post-kill feed: %v", err)
		}
		st, serr := client.Stats(ctx)
		if serr != nil {
			t.Fatalf("failover stats: %v", serr)
		}
		lo = int(st.Fed)
	}
	st, err := client.Stats(ctx)
	if err != nil || st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("survivor fed %d (err %v), want %d", st.Fed, err, len(tr.Records))
	}
	client.Close()

	// Drain the follower; its store must hold the full replicated state.
	fCancel()
	if err := <-fDone; err != nil {
		t.Fatalf("follower run: %v", err)
	}
	if !flog.contains("promotable") || !flog.contains("promoted") {
		t.Fatalf("follower log missed the promotion lifecycle: %v", flog.lines)
	}
	if !plog.contains("caught up and attached") {
		t.Fatalf("primary log missed the attach: %v", plog.lines)
	}
	m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2),
		farmer.WithStore(fWAL), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if mst, _ := m.Stats(context.Background()); mst.Fed != uint64(len(tr.Records)) {
		t.Fatalf("follower checkpoint fed %d, want %d", mst.Fed, len(tr.Records))
	}
}

// TestRunPrimaryRefusesDeadFollower: a primary whose follower is absent at
// startup is a runtime failure, not a hang.
func TestRunPrimaryRefusesDeadFollower(t *testing.T) {
	err := Run(context.Background(), Options{Addr: freePort(t), ReplicateTo: []string{"127.0.0.1:1"}})
	if err == nil || errors.Is(err, ErrUsage) {
		t.Fatalf("err = %v, want a runtime attach failure", err)
	}
}

func waitUp(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
