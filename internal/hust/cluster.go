package hust

import (
	"fmt"
	"time"

	"farmer/internal/metrics"
	"farmer/internal/sim"
	"farmer/internal/trace"
)

// OSDConfig parameterises an object storage device.
type OSDConfig struct {
	Workers   int
	SeekTime  time.Duration // per-request positioning cost
	Bandwidth float64       // bytes per second of sequential transfer
}

// DefaultOSDConfig returns a commodity-disk OSD model.
func DefaultOSDConfig() OSDConfig {
	return OSDConfig{Workers: 1, SeekTime: 5 * time.Millisecond, Bandwidth: 80e6}
}

// OSD simulates one object storage device serving the data path.
type OSD struct {
	cfg OSDConfig
	srv *sim.Server
	io  metrics.Counter
}

// NewOSD attaches an OSD to the engine.
func NewOSD(eng *sim.Engine, cfg OSDConfig) *OSD {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 80e6
	}
	return &OSD{cfg: cfg, srv: sim.NewServer(eng, cfg.Workers)}
}

// Read submits an object read of size bytes; done runs with the I/O time.
// Sequential reads (part of a batch) may skip the seek.
func (o *OSD) Read(size uint32, sequential bool, done func(time.Duration)) {
	service := time.Duration(float64(size) / o.cfg.Bandwidth * float64(time.Second))
	if !sequential {
		service += o.cfg.SeekTime
	}
	o.io.Inc()
	o.srv.Submit(sim.PriorityDemand, &sim.Request{
		Service: service,
		Done: func(wait, total time.Duration) {
			if done != nil {
				done(total)
			}
		},
	})
}

// IOs reports the number of reads submitted. Like the metrics.Counter it
// wraps, it is safe to read while other goroutines submit — the engine
// itself is single-threaded, but OSDs are also reused by harnesses that
// poll statistics from outside the simulation loop.
func (o *OSD) IOs() uint64 { return o.io.Load() }

// ReplayConfig drives a trace replay against a cluster.
type ReplayConfig struct {
	MDS MDSConfig
	// ArrivalGap spaces demand arrivals evenly; when zero, the trace's own
	// timestamps are used (scaled by TimeScale).
	ArrivalGap time.Duration
	// TimeScale multiplies trace timestamps when ArrivalGap is zero.
	TimeScale float64
	// NetworkRTT is added to every client-observed response time.
	NetworkRTT time.Duration
	// MaxRecords caps how many records of the trace are replayed, so a
	// short prefix run shares one generated trace with full-length runs;
	// 0 replays the whole trace.
	MaxRecords int
}

// DefaultReplayConfig spaces arrivals at 1ms, which loads the default
// 4-worker / 2ms-miss MDS to a stable utilisation.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{
		MDS:        DefaultMDSConfig(),
		ArrivalGap: time.Millisecond,
		NetworkRTT: 200 * time.Microsecond,
	}
}

// Result is the outcome of one replay.
type Result struct {
	Trace  string
	Policy string
	Stats  Stats
	// ClientAvg is the mean client-observed latency (MDS response + RTT).
	ClientAvg time.Duration
	SimTime   time.Duration
}

// Replay runs the whole trace through an MDS built with cfg.MDS and the
// given predictor, on a fresh engine, and returns the result.
func Replay(t *trace.Trace, cfg ReplayConfig, mdsFactory func(*sim.Engine) (*MDS, error)) (Result, error) {
	eng := sim.New()
	mds, err := mdsFactory(eng)
	if err != nil {
		return Result{}, err
	}
	if err := mds.PopulateStore(t); err != nil {
		return Result{}, err
	}
	n := len(t.Records)
	if cfg.MaxRecords > 0 && cfg.MaxRecords < n {
		n = cfg.MaxRecords
	}
	if n == 0 {
		return Result{}, fmt.Errorf("hust: empty trace %q", t.Name)
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	var clientSum time.Duration
	var clientN uint64
	for i := 0; i < n; i++ {
		r := &t.Records[i]
		var at time.Duration
		if cfg.ArrivalGap > 0 {
			at = time.Duration(i) * cfg.ArrivalGap
		} else {
			at = time.Duration(float64(r.Time) * scale)
		}
		rec := r
		eng.At(at, func() {
			mds.Demand(rec, func(resp time.Duration) {
				clientSum += resp + cfg.NetworkRTT
				clientN++
			})
		})
	}
	eng.Run()
	res := Result{
		Trace:   t.Name,
		Policy:  mds.Predictor().Name(),
		Stats:   mds.Finish(),
		SimTime: eng.Now(),
	}
	if clientN > 0 {
		res.ClientAvg = clientSum / time.Duration(clientN)
	}
	return res, nil
}
