package hust

import (
	"reflect"
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func globalTestSetup(t *testing.T) (*ReplayConfig, core.Config) {
	t.Helper()
	cfg := DefaultReplayConfig()
	cfg.MDS.MineTime = time.Millisecond
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(true)
	return &cfg, mc
}

// TestGlobalClusterMinesGlobalModel: the cluster's merged model must equal
// the paper-exact sequential Model on the same trace, list for list, and
// the global read surface (CorrelatorList/Predict/GlobalMiner) must serve
// it. internal/replay re-asserts this via fingerprints; here it is checked
// structurally, with the traffic accounting alongside.
func TestGlobalClusterMinesGlobalModel(t *testing.T) {
	tr := tracegen.HP(8000).MustGenerate()
	cfg, mc := globalTestSetup(t)
	cs, c, err := ReplayGlobalCluster(tr, *cfg, 4, HashPartitioner, mc, DefaultGlobalConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A slow interconnect delays delivery (head-of-line, in order) but must
	// never reorder it: the mined model is identical at any NetDelay.
	slow := DefaultGlobalConfig()
	slow.NetDelay = 5 * time.Millisecond
	_, cSlow, err := ReplayGlobalCluster(tr, *cfg, 4, HashPartitioner, mc, slow)
	if err != nil {
		t.Fatal(err)
	}
	if c.Servers() != 4 || c.Server(0) == nil {
		t.Fatalf("cluster shape wrong: %d servers", c.Servers())
	}
	g := cs.Global
	if g == nil {
		t.Fatal("no global stats from a global cluster")
	}
	if g.Fed != uint64(len(tr.Records)) || g.Events == 0 {
		t.Fatalf("dispatcher accounting: %+v", g)
	}
	if g.CrossEvents == 0 || g.CrossRatio <= 0 || g.CrossRatio >= 1 {
		t.Fatalf("cross traffic accounting: %+v", g)
	}
	if g.CrossPrefetches == 0 {
		t.Fatal("no cross-server prefetch routing under hash placement")
	}
	if g.MailboxDropped != 0 {
		t.Fatalf("%d mailbox drops at default bound", g.MailboxDropped)
	}

	ref := core.New(mc)
	ref.FeedTrace(tr)
	ens := c.GlobalMiner()
	if ens == nil || ens.Fed() != uint64(len(tr.Records)) {
		t.Fatal("global ensemble missing or short")
	}
	// The per-server predictor surface is read-only: Record must not feed
	// the global model (the cluster dispatcher already did).
	p := c.Server(0).Predictor()
	if p.Name() != "FARMER-global" {
		t.Fatalf("predictor %q", p.Name())
	}
	p.Record(&tr.Records[0])
	if ens.Fed() != uint64(len(tr.Records)) {
		t.Fatal("predictor Record fed the global model")
	}
	var owned trace.FileID
	for f := 0; f < tr.FileCount; f++ {
		if HashPartitioner(trace.FileID(f), 4) == 0 {
			owned = trace.FileID(f)
			break
		}
	}
	if got := p.Predict(owned, 4); !reflect.DeepEqual(got, c.Predict(owned, 4)) {
		t.Fatal("server predictor disagrees with the global model for a file it owns")
	}
	// Exported external-miner prefetch hook is callable directly.
	c.Server(0).IssuePrefetches(owned)
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		if !reflect.DeepEqual(ref.CorrelatorList(id), c.CorrelatorList(id)) {
			t.Fatalf("file %d: cluster list diverges from sequential reference", f)
		}
		if !reflect.DeepEqual(ref.Predict(id, 4), c.Predict(id, 4)) {
			t.Fatalf("file %d: cluster prediction diverges", f)
		}
		if !reflect.DeepEqual(ref.CorrelatorList(id), cSlow.CorrelatorList(id)) {
			t.Fatalf("file %d: slow-interconnect cluster diverges (delivery reordered?)", f)
		}
	}
}

// TestGlobalClusterOutperformsPerPartition: under mining-heavy load and
// hash placement, global mining must beat the per-partition baseline on
// mean response (mining leaves the demand path AND prefetches route to the
// successor's server) without regressing demand wait.
func TestGlobalClusterOutperformsPerPartition(t *testing.T) {
	tr := tracegen.HP(10000).MustGenerate()
	cfg, mc := globalTestSetup(t)

	local, err := ReplayCluster(tr, *cfg, 4, HashPartitioner, func(i int, e *sim.Engine) (*MDS, error) {
		lc := mc
		lc.Shards = 1
		return NewFARMERMDS(e, cfg.MDS, nil, lc)
	})
	if err != nil {
		t.Fatal(err)
	}
	global, _, err := ReplayGlobalCluster(tr, *cfg, 4, HashPartitioner, mc, DefaultGlobalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if global.AvgResponse >= local.AvgResponse {
		t.Fatalf("global response %v not better than per-partition %v", global.AvgResponse, local.AvgResponse)
	}
	if global.AvgDemandWait > local.AvgDemandWait {
		t.Fatalf("global demand wait %v worse than per-partition %v", global.AvgDemandWait, local.AvgDemandWait)
	}
}

// TestGlobalClusterValidation covers construction errors and the inert
// global surface of a per-partition cluster.
func TestGlobalClusterValidation(t *testing.T) {
	_, mc := globalTestSetup(t)
	bad := mc
	bad.Weight = 2
	if _, err := NewGlobalCluster(sim.New(), 4, nil, DefaultMDSConfig(), bad, DefaultGlobalConfig()); err == nil {
		t.Fatal("invalid miner config accepted")
	}
	if _, err := NewGlobalCluster(sim.New(), 0, nil, DefaultMDSConfig(), mc, DefaultGlobalConfig()); err == nil {
		t.Fatal("zero servers accepted")
	}

	// A per-partition cluster has no global model to read.
	c, err := NewCluster(sim.New(), 2, nil, clusterFactory(DefaultMDSConfig(), true))
	if err != nil {
		t.Fatal(err)
	}
	if c.GlobalMiner() != nil || c.CorrelatorList(1) != nil || c.Predict(1, 4) != nil {
		t.Fatal("per-partition cluster exposes a global model")
	}
}

// TestGlobalClusterTinyMailboxSheds: overflow is counted and the run still
// completes — fidelity degrades, the demand path does not.
func TestGlobalClusterTinyMailboxSheds(t *testing.T) {
	tr := tracegen.HP(4000).MustGenerate()
	cfg, mc := globalTestSetup(t)
	gcfg := DefaultGlobalConfig()
	gcfg.MailboxCap = 2
	cs, _, err := ReplayGlobalCluster(tr, *cfg, 4, GroupPartitioner, mc, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Demand != uint64(len(tr.Records)) {
		t.Fatalf("served %d of %d demands", cs.Demand, len(tr.Records))
	}
	if cs.Global.MailboxDropped == 0 {
		t.Fatal("2-slot mailboxes dropped nothing")
	}
}
