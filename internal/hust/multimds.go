package hust

import (
	"fmt"
	"time"

	"farmer/internal/metrics"
	"farmer/internal/partition"
	"farmer/internal/sim"
	"farmer/internal/trace"
)

// Multi-MDS clustering (paper §4.1): "use multiple metadata servers to
// coordinate the metadata requests ... for load balancing". Files are
// partitioned across servers by a deterministic hash; by default every
// server runs its own cache, store and predictor over the request
// sub-stream it actually observes — which is exactly the visibility a
// partitioned deployment has, and is why per-partition mining still works
// (a file and its correlated successors usually live on the same directory
// sub-tree and can be co-partitioned; the hash here is uniform, the
// pessimistic case). NewGlobalCluster (global.go) removes the pessimism:
// a cluster-level partition.Dispatcher routes edge events across server
// boundaries so the ensemble mines the global correlation model.

// Partitioner maps a file to a metadata server index — the deployment-level
// alias of partition.Partitioner.
type Partitioner = partition.Partitioner

// HashPartitioner spreads files uniformly (Fibonacci hashing).
func HashPartitioner(f trace.FileID, servers int) int { return partition.Hash(f, servers) }

// GroupPartitioner co-locates runs of adjacent file ids (the generators
// allocate a correlation group's files contiguously, so this approximates
// correlation-aware placement via the §4.2 grouping).
func GroupPartitioner(f trace.FileID, servers int) int { return partition.Group(f, servers) }

// Cluster is a set of metadata servers sharing one virtual-time engine.
// With a global miner attached (NewGlobalCluster) the servers collectively
// mine one model; otherwise each server's predictor sees only its own
// sub-stream.
type Cluster struct {
	eng       *sim.Engine
	servers   []*MDS
	partition Partitioner
	resp      metrics.LatencyHist
	global    *globalMiner
}

// NewCluster builds n servers with the given per-server factory.
func NewCluster(eng *sim.Engine, n int, partition Partitioner, factory func(i int, e *sim.Engine) (*MDS, error)) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hust: cluster size %d", n)
	}
	if partition == nil {
		partition = HashPartitioner
	}
	c := &Cluster{eng: eng, partition: partition}
	for i := 0; i < n; i++ {
		m, err := factory(i, eng)
		if err != nil {
			return nil, fmt.Errorf("hust: building server %d: %w", i, err)
		}
		c.servers = append(c.servers, m)
	}
	return c, nil
}

// Servers reports the cluster size.
func (c *Cluster) Servers() int { return len(c.servers) }

// Server exposes one MDS (tests).
func (c *Cluster) Server(i int) *MDS { return c.servers[i] }

// Demand routes a request to the owning server. With a global miner
// attached, the record is additionally sequenced through the cluster
// dispatcher, which fans its mining events out across server boundaries.
func (c *Cluster) Demand(r *trace.Record, done func(resp time.Duration)) {
	idx := c.partition(r.File, len(c.servers))
	c.servers[idx].Demand(r, func(resp time.Duration) {
		c.resp.Observe(resp)
		if done != nil {
			done(resp)
		}
	})
	if c.global != nil {
		c.mineGlobal(idx, r)
	}
}

// ClusterStats aggregates a cluster run.
type ClusterStats struct {
	PerServer   []Stats
	AvgResponse time.Duration
	P95Response time.Duration
	Demand      uint64
	// AvgDemandWait is the demand-weighted mean queueing delay across the
	// servers' demand classes — the cluster-level demand-path health number.
	AvgDemandWait time.Duration
	// Imbalance is max per-server demand / mean per-server demand (1.0 =
	// perfectly balanced).
	Imbalance float64
	// HitRatio is the demand-weighted aggregate cache hit ratio.
	HitRatio float64
	// Global carries the global-mining layer's accounting; nil for
	// per-partition-miner clusters.
	Global *GlobalMiningStats
}

// Finish collects aggregate and per-server statistics.
func (c *Cluster) Finish() ClusterStats {
	cs := ClusterStats{
		AvgResponse: c.resp.Mean(),
		P95Response: c.resp.Quantile(0.95),
		Demand:      c.resp.Count(),
	}
	var maxDemand, sumDemand uint64
	var hits, lookups uint64
	var waitSum time.Duration
	for _, s := range c.servers {
		st := s.Finish()
		cs.PerServer = append(cs.PerServer, st)
		if st.Demand > maxDemand {
			maxDemand = st.Demand
		}
		sumDemand += st.Demand
		waitSum += st.AvgDemandWait * time.Duration(st.Demand)
		hits += st.Cache.Hits
		lookups += st.Cache.Lookups
	}
	if sumDemand > 0 {
		mean := float64(sumDemand) / float64(len(c.servers))
		cs.Imbalance = float64(maxDemand) / mean
		cs.AvgDemandWait = waitSum / time.Duration(sumDemand)
	}
	if lookups > 0 {
		cs.HitRatio = float64(hits) / float64(lookups)
	}
	if c.global != nil {
		cs.Global = c.global.stats()
	}
	return cs
}

// replay drives a whole trace through a built cluster with evenly spaced
// arrivals — shared by the per-partition and global replay entry points.
func (c *Cluster) replay(t *trace.Trace, cfg ReplayConfig) (ClusterStats, error) {
	for _, s := range c.servers {
		if err := s.PopulateStore(t); err != nil {
			return ClusterStats{}, err
		}
	}
	n := len(t.Records)
	if cfg.MaxRecords > 0 && cfg.MaxRecords < n {
		n = cfg.MaxRecords
	}
	if n == 0 {
		return ClusterStats{}, fmt.Errorf("hust: empty trace %q", t.Name)
	}
	gap := cfg.ArrivalGap
	if gap <= 0 {
		gap = time.Millisecond
	}
	for i := 0; i < n; i++ {
		r := &t.Records[i]
		c.eng.At(time.Duration(i)*gap, func() { c.Demand(r, nil) })
	}
	c.eng.Run()
	return c.Finish(), nil
}

// ReplayCluster drives a whole trace through an n-server cluster with
// evenly spaced arrivals and returns the aggregate stats.
func ReplayCluster(t *trace.Trace, cfg ReplayConfig, n int, partition Partitioner,
	factory func(i int, e *sim.Engine) (*MDS, error)) (ClusterStats, error) {
	eng := sim.New()
	c, err := NewCluster(eng, n, partition, factory)
	if err != nil {
		return ClusterStats{}, err
	}
	return c.replay(t, cfg)
}
