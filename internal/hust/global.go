// Global mining across the multi-MDS cluster: instead of each server mining
// only the request sub-stream it observes (the pessimistic per-partition
// deployment the multimds.go comment admits), a cluster-level
// partition.Dispatcher sequences every demand access once and fans the
// Stage-3/4 edge events out to the servers owning the affected state. The
// partitions of one core.ShardedModel ARE the servers' local miners —
// server i predicts from Shard(i), which holds exactly the files the
// cluster routes to i — so N partitioned servers collectively mine the same
// model a single ShardedModel would, bit for bit, while every demand
// request still touches only its home server.
//
// Cross-server event traffic is modeled, not assumed free: events whose
// owner differs from the record's home server travel through a bounded,
// drop-oldest partition.Mailbox and arrive after GlobalConfig.NetDelay of
// virtual time; each record's mining CPU is priced on the owning server's
// mining station (MDSConfig.MineTime), which also times the prefetch issue.
// Overload therefore degrades remote-model freshness (counted drops) and
// prefetch coverage — never demand latency, which stays on the pure
// cache/store path (MDSConfig.ExternalMiner).
package hust

import (
	"fmt"
	"time"

	"farmer/internal/core"
	"farmer/internal/partition"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
)

// GlobalConfig tunes the cluster-level global miner.
type GlobalConfig struct {
	// NetDelay is the one-way virtual-time latency of an inter-MDS event
	// delivery. Events bound for the record's home server apply immediately
	// (they never leave the machine).
	NetDelay time.Duration
	// MailboxCap bounds each server's in-flight event mailbox; beyond it
	// the oldest undelivered event is dropped and counted
	// (partition.DefaultMailboxCap when 0).
	MailboxCap int
}

// DefaultGlobalConfig models a same-rack metadata cluster: 100µs one-way
// event latency, default mailbox bound.
func DefaultGlobalConfig() GlobalConfig {
	return GlobalConfig{NetDelay: 100 * time.Microsecond}
}

// globalMiner is the cluster-side mining state: the collective ensemble,
// one mailbox per server, and traffic accounting.
//
// Delivery is strictly in order per server — the invariant bit-identical
// mining rests on — AND honestly priced: every event carries a due time
// (push time for the home server's own share, +NetDelay for remote
// shares), and a server applies its stream only up to the first event
// whose due time has not arrived. A local event queued behind an in-flight
// remote one therefore waits for it (head-of-line blocking, exactly what
// in-order delivery over a network costs), rather than the remote event
// jumping its latency.
type globalMiner struct {
	cfg   GlobalConfig
	ens   *core.ShardedModel
	boxes []*partition.Mailbox
	// due[i] holds the delivery deadlines of boxes[i]'s queued events, in
	// the same FIFO order (kept aligned through overflow drops).
	due [][]time.Duration
	// pending[i] marks a scheduled wake-up for server i, so a burst of
	// remote events costs one virtual-time event, not one per record.
	pending       []bool
	events        uint64
	cross         uint64
	crossPrefetch uint64
}

// push enqueues one event for owner with its delivery deadline, keeping the
// due deque aligned when the bounded mailbox sheds its oldest entries.
func (g *globalMiner) push(owner int, ev partition.Event, dueAt time.Duration) {
	before := g.boxes[owner].Dropped()
	g.boxes[owner].Push(ev)
	if d := g.boxes[owner].Dropped() - before; d > 0 {
		g.due[owner] = g.due[owner][d:]
	}
	g.due[owner] = append(g.due[owner], dueAt)
}

// globalPredictor serves Predict from the server's partition of the
// cluster-wide ensemble. Record is a no-op: the cluster dispatcher mines
// globally, so a server never feeds its own sub-stream.
type globalPredictor struct{ m *core.Model }

func (globalPredictor) Name() string                                   { return "FARMER-global" }
func (globalPredictor) Record(*trace.Record)                           {}
func (p globalPredictor) Predict(f trace.FileID, k int) []trace.FileID { return p.m.Predict(f, k) }

var _ predictors.Predictor = globalPredictor{}

// NewGlobalCluster builds an n-server cluster that mines the global
// correlation model. part routes both demand requests and mined state
// (nil = HashPartitioner); mdsCfg parameterises every server (AsyncPrefetch
// and ExternalMiner are forced on — global mining is asynchronous by
// construction); mc configures the collective miner (mc.Shards is ignored:
// the ensemble is striped by server).
func NewGlobalCluster(eng *sim.Engine, n int, part Partitioner, mdsCfg MDSConfig,
	mc core.Config, gcfg GlobalConfig) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hust: cluster size %d", n)
	}
	if part == nil {
		part = HashPartitioner
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	mdsCfg.AsyncPrefetch = true
	mdsCfg.ExternalMiner = true
	if mdsCfg.MinerWorkers == 0 {
		mdsCfg.MinerWorkers = mdsCfg.Workers
	}
	ens := core.NewShardedPartitioned(mc, n, part)
	g := &globalMiner{
		cfg:     gcfg,
		ens:     ens,
		boxes:   make([]*partition.Mailbox, n),
		due:     make([][]time.Duration, n),
		pending: make([]bool, n),
	}
	for i := range g.boxes {
		g.boxes[i] = partition.NewMailbox(gcfg.MailboxCap, nil)
	}
	c, err := NewCluster(eng, n, part, func(i int, e *sim.Engine) (*MDS, error) {
		return NewMDS(e, mdsCfg, nil, globalPredictor{m: ens.Shard(i)})
	})
	if err != nil {
		return nil, err
	}
	c.global = g
	return c, nil
}

// mineGlobal sequences one record through the cluster dispatcher and routes
// its events: the home server's share is due immediately, remote shares
// after NetDelay. Per-server application order equals global dispatch order
// — each mailbox is FIFO and deliverGlobal releases only its due prefix —
// which is the invariant keeping the ensemble bit-identical to a single
// locally fed ShardedModel while nothing drops.
func (c *Cluster) mineGlobal(home int, r *trace.Record) {
	g := c.global
	now := c.eng.Now()
	c.global.ens.DispatchExternal(r, func(owner int, ev partition.Event) {
		g.events++
		dueAt := now
		if owner != home {
			g.cross++
			dueAt += g.cfg.NetDelay
		}
		g.push(owner, ev, dueAt)
		c.deliverGlobal(owner)
	})
}

// deliverGlobal applies a server's due event prefix to its partition of the
// ensemble and schedules a wake-up for the first still-in-flight event.
// State applies at delivery (keeping order deterministic); the mining CPU
// is priced afterwards on the server's mining station, whose completion
// issues the prefetches for each record the server owns — the same cost
// model as the single-MDS async pipeline.
func (c *Cluster) deliverGlobal(owner int) {
	g := c.global
	srv := c.servers[owner]
	now := c.eng.Now()
	var evs []partition.Event
	for len(g.due[owner]) > 0 && g.due[owner][0] <= now {
		ev, ok := g.boxes[owner].Pop()
		if !ok {
			// Overflow shed more events than due deadlines were consumed;
			// resynchronize (the drops are already counted).
			g.due[owner] = g.due[owner][:0]
			break
		}
		g.due[owner] = g.due[owner][1:]
		evs = append(evs, ev)
	}
	if len(evs) > 0 {
		g.ens.Shard(owner).ApplyEvents(evs)
		for i := range evs {
			if !evs[i].Access {
				continue
			}
			f := evs[i].Succ
			srv.SubmitMine(srv.cfg.MineTime, func() { c.issueGlobalPrefetches(owner, f) })
		}
	}
	if len(g.due[owner]) > 0 && !g.pending[owner] {
		g.pending[owner] = true
		dst := owner
		c.eng.After(g.due[owner][0]-now, func() {
			g.pending[dst] = false
			c.deliverGlobal(dst)
		})
	}
}

// issueGlobalPrefetches is where global mining pays off: the successors of
// f may live on ANY server, and a prefetch only helps on the server that
// will see the successor's demand. Each predicted candidate is therefore
// routed to its owning server's prefetch queue — locally at once, remotely
// after NetDelay — with each server's share forming one PrefetchBatch. A
// per-partition miner cannot do this: it never learns cross-server
// successors in the first place.
func (c *Cluster) issueGlobalPrefetches(home int, f trace.FileID) {
	g := c.global
	k := c.servers[home].cfg.PrefetchK
	if k <= 0 {
		return
	}
	cands := g.ens.Predict(f, k)
	if len(cands) == 0 {
		return
	}
	n := len(c.servers)
	byOwner := make(map[int][]trace.FileID, 2)
	for _, cand := range cands {
		byOwner[c.partition(cand, n)] = append(byOwner[c.partition(cand, n)], cand)
	}
	for owner, list := range byOwner {
		if owner == home {
			c.servers[owner].PrefetchFiles(list)
			continue
		}
		g.crossPrefetch += uint64(len(list))
		dst, files := owner, list
		c.eng.After(g.cfg.NetDelay, func() { c.servers[dst].PrefetchFiles(files) })
	}
}

// GlobalMiningStats is the global miner's accounting after a run.
type GlobalMiningStats struct {
	// Fed is how many records the cluster dispatcher sequenced.
	Fed uint64
	// Events is the total mining events routed; CrossEvents counts the ones
	// shipped to a server other than the record's home (the inter-MDS
	// traffic a partitioned deployment pays for global visibility).
	Events      uint64
	CrossEvents uint64
	// CrossRatio is CrossEvents / Events (0 when nothing was mined).
	CrossRatio float64
	// CrossPrefetches counts predictions routed to a server other than the
	// miner's — the cross-partition prefetches only global mining can issue.
	CrossPrefetches uint64
	// MailboxDropped counts events evicted from full mailboxes — each one a
	// permanent, counted divergence from the global model.
	MailboxDropped uint64
}

func (g *globalMiner) stats() *GlobalMiningStats {
	s := &GlobalMiningStats{
		Fed:             g.ens.Fed(),
		Events:          g.events,
		CrossEvents:     g.cross,
		CrossPrefetches: g.crossPrefetch,
	}
	for _, b := range g.boxes {
		s.MailboxDropped += b.Dropped()
	}
	if g.events > 0 {
		s.CrossRatio = float64(g.cross) / float64(g.events)
	}
	return s
}

// GlobalMiner exposes the cluster's collective ensemble (nil for
// per-partition clusters): fingerprinting, merged persistence, direct
// reads. Server i's partition is Miner().Shard(i).
func (c *Cluster) GlobalMiner() *core.ShardedModel {
	if c.global == nil {
		return nil
	}
	return c.global.ens
}

// CorrelatorList reads a file's list from the owning server's partition of
// the global model — with internal/replay's Fingerprint, the cluster's
// merged mined state hashes exactly like a single miner's.
func (c *Cluster) CorrelatorList(f trace.FileID) []core.Correlator {
	if c.global == nil {
		return nil
	}
	return c.global.ens.CorrelatorList(f)
}

// Predict proposes up to k successors of f from the global model.
func (c *Cluster) Predict(f trace.FileID, k int) []trace.FileID {
	if c.global == nil {
		return nil
	}
	return c.global.ens.Predict(f, k)
}

// ReplayGlobalCluster drives a whole trace through an n-server
// global-mining cluster with evenly spaced arrivals. The returned cluster
// carries the mined ensemble (GlobalMiner) for fingerprinting or merged
// persistence after the run.
func ReplayGlobalCluster(t *trace.Trace, cfg ReplayConfig, n int, part Partitioner,
	mc core.Config, gcfg GlobalConfig) (ClusterStats, *Cluster, error) {
	eng := sim.New()
	c, err := NewGlobalCluster(eng, n, part, cfg.MDS, mc, gcfg)
	if err != nil {
		return ClusterStats{}, nil, err
	}
	cs, err := c.replay(t, cfg)
	if err != nil {
		return ClusterStats{}, nil, err
	}
	return cs, c, nil
}
