package hust

import (
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// TestAsyncDemandExcludesMineTime pins the core latency contract: with
// synchronous mining a demand request pays MineTime in service; with
// AsyncPrefetch it pays only the cache/store cost, however heavy mining is.
func TestAsyncDemandExcludesMineTime(t *testing.T) {
	for _, async := range []bool{false, true} {
		eng := sim.New()
		cfg := DefaultMDSConfig()
		cfg.MineTime = 10 * time.Millisecond
		cfg.AsyncPrefetch = async
		mds, err := NewFARMERMDS(eng, cfg, nil, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var resp time.Duration
		r := &trace.Record{File: 1, Path: "/a/b"}
		mds.Demand(r, func(d time.Duration) { resp = d })
		eng.Run()
		want := cfg.StoreReadTime
		if !async {
			want += cfg.MineTime
		}
		if resp != want {
			t.Fatalf("async=%v: response = %v, want %v", async, resp, want)
		}
	}
}

// TestAsyncMinesInArrivalOrderIdenticalState replays the same trace through
// a sync and an async FARMER MDS and compares the complete mined state: the
// mining station is FIFO with uniform service, so the async miner must end
// bit-identical to the sync one.
func TestAsyncMinesInArrivalOrderIdenticalState(t *testing.T) {
	tr, err := tracegen.HP(4000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)

	var miners []*core.ShardedModel
	for _, async := range []bool{false, true} {
		cfg := DefaultReplayConfig()
		cfg.MDS.MineTime = 300 * time.Microsecond
		cfg.MDS.AsyncPrefetch = async
		var mds *MDS
		_, err := Replay(tr, cfg, func(e *sim.Engine) (*MDS, error) {
			m, err := NewFARMERMDS(e, cfg.MDS, nil, mc)
			mds = m
			return m, err
		})
		if err != nil {
			t.Fatal(err)
		}
		fpa, ok := mds.Predictor().(*predictors.FPA)
		if !ok {
			t.Fatal("predictor is not an FPA")
		}
		model, ok := fpa.Miner().(*core.ShardedModel)
		if !ok {
			t.Fatal("FPA does not drive a ShardedModel")
		}
		miners = append(miners, model)
	}
	sy, as := miners[0], miners[1]
	if sy.Fed() != as.Fed() || sy.Fed() != uint64(len(tr.Records)) {
		t.Fatalf("fed counts: sync %d async %d, want %d", sy.Fed(), as.Fed(), len(tr.Records))
	}
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		sl, al := sy.CorrelatorList(id), as.CorrelatorList(id)
		if len(sl) != len(al) {
			t.Fatalf("file %d: list length %d vs %d", f, len(sl), len(al))
		}
		for i := range sl {
			if sl[i] != al[i] {
				t.Fatalf("file %d entry %d: %+v vs %+v", f, i, sl[i], al[i])
			}
		}
	}
}

// TestAsyncPrefetchStillPrefetches checks the async path actually issues
// and completes prefetches that serve demand hits.
func TestAsyncPrefetchStillPrefetches(t *testing.T) {
	tr, err := tracegen.HP(6000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultReplayConfig()
	cfg.MDS.AsyncPrefetch = true
	cfg.MDS.MineTime = 100 * time.Microsecond
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)
	res, err := Replay(tr, cfg, func(e *sim.Engine) (*MDS, error) {
		return NewFARMERMDS(e, cfg.MDS, nil, mc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrefetchIssued == 0 {
		t.Fatal("async MDS issued no prefetches")
	}
	if res.Stats.PrefetchDone != res.Stats.PrefetchIssued {
		t.Fatalf("unbounded queue lost prefetches: done %d of %d",
			res.Stats.PrefetchDone, res.Stats.PrefetchIssued)
	}
	if res.Stats.Cache.PrefetchHits == 0 {
		t.Fatal("no demand hit was served by an async prefetch")
	}
	if res.Stats.MineAvgWait < 0 {
		t.Fatal("negative mining wait")
	}
}

// TestPrefetchQueueBoundDropsOldest bounds the prefetch backlog and checks
// drop accounting conservation after a drained run.
func TestPrefetchQueueBoundDropsOldest(t *testing.T) {
	tr, err := tracegen.HP(6000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultReplayConfig()
	cfg.MDS.AsyncPrefetch = true
	cfg.MDS.PrefetchQueue = 1
	cfg.MDS.PrefetchBatch = false          // every prefetch is a full store read
	cfg.ArrivalGap = 50 * time.Microsecond // overload: arrivals outpace service
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)
	res, err := Replay(tr, cfg, func(e *sim.Engine) (*MDS, error) {
		return NewFARMERMDS(e, cfg.MDS, nil, mc)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.PrefetchDropped == 0 {
		t.Fatal("overloaded 1-slot prefetch queue dropped nothing")
	}
	if st.PrefetchIssued != st.PrefetchDone+st.PrefetchDropped {
		t.Fatalf("conservation violated: issued %d != done %d + dropped %d",
			st.PrefetchIssued, st.PrefetchDone, st.PrefetchDropped)
	}
}

// TestMDSConfigValidateAsyncFields covers the new knobs.
func TestMDSConfigValidateAsyncFields(t *testing.T) {
	base := DefaultMDSConfig()
	for name, mut := range map[string]func(*MDSConfig){
		"negative mine time":      func(c *MDSConfig) { c.MineTime = -1 },
		"negative miner workers":  func(c *MDSConfig) { c.MinerWorkers = -1 },
		"negative prefetch queue": func(c *MDSConfig) { c.PrefetchQueue = -1 },
	} {
		c := base
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
	c := base
	c.MineTime = time.Millisecond
	c.AsyncPrefetch = true
	c.MinerWorkers = 8
	c.PrefetchQueue = 64
	if err := c.Validate(); err != nil {
		t.Fatalf("valid async config rejected: %v", err)
	}
}

// stubPredictor always predicts the same candidate set.
type stubPredictor struct{ cands []trace.FileID }

func (stubPredictor) Name() string                               { return "stub" }
func (stubPredictor) Record(*trace.Record)                       {}
func (p stubPredictor) Predict(trace.FileID, int) []trace.FileID { return p.cands }

// TestBatchLeaderDropRepricesFollower pins the batched-prefetch pricing
// against bounded-queue drops: when the member that would have paid the
// batch's store I/O is dropped, the surviving member must pay it at service
// entry instead of riding an I/O that never happened.
func TestBatchLeaderDropRepricesFollower(t *testing.T) {
	eng := sim.New()
	cfg := DefaultMDSConfig()
	cfg.Workers = 1
	cfg.PrefetchK = 3
	cfg.PrefetchBatch = true
	cfg.PrefetchQueue = 1
	mds, err := NewMDS(eng, cfg, nil, stubPredictor{cands: []trace.FileID{10, 11, 12}})
	if err != nil {
		t.Fatal(err)
	}
	// The demand miss (2ms) occupies the single worker; the three batch
	// prefetches queue behind it and the 1-slot bound drops the first two —
	// including the would-be I/O leader.
	mds.Demand(&trace.Record{File: 1}, nil)
	eng.Run()
	st := mds.Finish()
	if st.PrefetchIssued != 3 || st.PrefetchDropped != 2 || st.PrefetchDone != 1 {
		t.Fatalf("prefetch accounting: issued %d dropped %d done %d, want 3/2/1",
			st.PrefetchIssued, st.PrefetchDropped, st.PrefetchDone)
	}
	// Demand (2ms) + surviving prefetch repriced to a full store read (2ms).
	if got, want := eng.Now(), 2*cfg.StoreReadTime; got != want {
		t.Fatalf("drained at %v, want %v (survivor must pay the store read)", got, want)
	}
}

// TestSyncPrefetchIssueDelayedByMineTime pins the sync leg's timing model:
// with modeled mining cost, predictions are issued when the demand request
// completes (wait + service, mining included), never instantly at arrival
// (which would flatter sync in the comparison).
func TestSyncPrefetchIssueDelayedByMineTime(t *testing.T) {
	eng := sim.New()
	cfg := DefaultMDSConfig()
	cfg.Workers = 2
	cfg.MineTime = 10 * time.Millisecond
	mds, err := NewMDS(eng, cfg, nil, stubPredictor{cands: []trace.FileID{7}})
	if err != nil {
		t.Fatal(err)
	}
	// Demand miss: completes at StoreReadTime + MineTime = 12ms.
	mds.Demand(&trace.Record{File: 1}, nil)
	eng.RunUntil(11 * time.Millisecond)
	if mds.prefetchSent != 0 {
		t.Fatalf("prefetch issued %d at t=11ms, before the request (and its mining) completed", mds.prefetchSent)
	}
	eng.Run()
	if mds.prefetchSent != 1 {
		t.Fatalf("prefetch issued %d after drain, want 1", mds.prefetchSent)
	}
	// MineTime=0 keeps the legacy issue-at-arrival behavior.
	eng2 := sim.New()
	cfg.MineTime = 0
	mds2, err := NewMDS(eng2, cfg, nil, stubPredictor{cands: []trace.FileID{7}})
	if err != nil {
		t.Fatal(err)
	}
	mds2.Demand(&trace.Record{File: 1}, nil)
	if mds2.prefetchSent != 1 {
		t.Fatalf("legacy sync mode issued %d prefetches at arrival, want 1", mds2.prefetchSent)
	}
}
