package hust

import (
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func clusterFactory(cfg MDSConfig, hasPaths bool) func(int, *sim.Engine) (*MDS, error) {
	return func(i int, e *sim.Engine) (*MDS, error) {
		mc := core.DefaultConfig()
		mc.Mask = vsm.DefaultMask(hasPaths)
		return NewMDS(e, cfg, nil, predictors.NewFPA(core.New(mc)))
	}
}

func TestClusterValidation(t *testing.T) {
	eng := sim.New()
	if _, err := NewCluster(eng, 0, nil, nil); err == nil {
		t.Fatal("zero servers accepted")
	}
}

func TestClusterBalancesLoad(t *testing.T) {
	tr := tracegen.HP(12000).MustGenerate()
	cfg := DefaultReplayConfig()
	cs, err := ReplayCluster(tr, cfg, 4, HashPartitioner, clusterFactory(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	if cs.Demand != 12000 {
		t.Fatalf("demand = %d", cs.Demand)
	}
	if len(cs.PerServer) != 4 {
		t.Fatalf("servers = %d", len(cs.PerServer))
	}
	if cs.Imbalance > 1.25 {
		t.Fatalf("hash partition imbalance %.3f too high", cs.Imbalance)
	}
}

// TestClusterScalesThroughput: under a tight arrival gap that saturates a
// single MDS, 4 servers must deliver much lower latency.
func TestClusterScalesThroughput(t *testing.T) {
	tr := tracegen.HP(10000).MustGenerate()
	cfg := DefaultReplayConfig()
	cfg.ArrivalGap = 300 * time.Microsecond // saturates one 4-worker MDS

	single, err := ReplayCluster(tr, cfg, 1, HashPartitioner, clusterFactory(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	quad, err := ReplayCluster(tr, cfg, 4, HashPartitioner, clusterFactory(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	if quad.AvgResponse >= single.AvgResponse {
		t.Fatalf("4-server latency %v >= 1-server %v", quad.AvgResponse, single.AvgResponse)
	}
	if quad.AvgResponse > single.AvgResponse/2 {
		t.Logf("note: scaling modest: %v vs %v", quad.AvgResponse, single.AvgResponse)
	}
}

// TestGroupPartitionerPreservesPrefetching: correlation-aware placement
// keeps group members on one server, so per-server mining sees whole
// sessions and the aggregate hit ratio beats uniform hashing.
func TestGroupPartitionerPreservesPrefetching(t *testing.T) {
	tr := tracegen.HP(12000).MustGenerate()
	cfg := DefaultReplayConfig()
	hash, err := ReplayCluster(tr, cfg, 4, HashPartitioner, clusterFactory(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := ReplayCluster(tr, cfg, 4, GroupPartitioner, clusterFactory(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	if grouped.HitRatio <= hash.HitRatio {
		t.Fatalf("group partition hit %.4f <= hash partition %.4f", grouped.HitRatio, hash.HitRatio)
	}
}

func TestPartitionersDeterministicAndInRange(t *testing.T) {
	for f := 0; f < 10000; f++ {
		for _, n := range []int{1, 3, 4, 7} {
			a := HashPartitioner(trace.FileID(f), n)
			b := HashPartitioner(trace.FileID(f), n)
			if a != b || a < 0 || a >= n {
				t.Fatalf("hash partitioner broken: f=%d n=%d -> %d,%d", f, n, a, b)
			}
			g := GroupPartitioner(trace.FileID(f), n)
			if g < 0 || g >= n {
				t.Fatalf("group partitioner out of range: %d", g)
			}
		}
	}
}
