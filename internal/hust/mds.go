// Package hust simulates the object-based storage system the paper
// prototypes FARMER on (§5.1): clients issue file requests; a metadata
// server (MDS) answers them from an LRU metadata cache backed by a
// Berkeley-DB-style store; object storage devices (OSDs) serve the data
// path. The MDS implements the paper's priority-based request scheduling —
// demand requests are served ahead of queued prefetch requests — and hosts
// the pluggable prefetch predictor (FARMER's FPA, Nexus, or none/LRU).
package hust

import (
	"encoding/binary"
	"fmt"
	"time"

	"farmer/internal/cache"
	"farmer/internal/core"
	"farmer/internal/kvstore"
	"farmer/internal/metrics"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
)

// MDSConfig parameterises the metadata server model.
type MDSConfig struct {
	// CacheCapacity is the metadata cache size in entries.
	CacheCapacity int
	// Workers is the number of concurrent metadata service threads.
	Workers int
	// CacheHitTime is the service time of a request satisfied from cache.
	CacheHitTime time.Duration
	// StoreReadTime is the service time of a metadata store (Berkeley DB)
	// lookup on a cache miss, dominated by the disk access.
	StoreReadTime time.Duration
	// PrefetchK is how many Correlator-List entries are prefetched per
	// demand access (the prefetching degree).
	PrefetchK int
	// PrefetchBatch treats a batch of prefetches triggered by one demand
	// access as a single store I/O (grouped layout, §4.2); otherwise each
	// prefetch is its own store read.
	PrefetchBatch bool
}

// DefaultMDSConfig returns calibrated service times: a cache hit costs
// 0.05ms of MDS CPU; a store miss costs 2ms (disk-bound Berkeley DB read).
func DefaultMDSConfig() MDSConfig {
	return MDSConfig{
		CacheCapacity: 256,
		Workers:       4,
		CacheHitTime:  50 * time.Microsecond,
		StoreReadTime: 2 * time.Millisecond,
		PrefetchK:     4,
		PrefetchBatch: true,
	}
}

// Validate reports configuration errors.
func (c MDSConfig) Validate() error {
	switch {
	case c.CacheCapacity <= 0:
		return fmt.Errorf("hust: cache capacity %d", c.CacheCapacity)
	case c.Workers <= 0:
		return fmt.Errorf("hust: workers %d", c.Workers)
	case c.CacheHitTime <= 0 || c.StoreReadTime <= 0:
		return fmt.Errorf("hust: non-positive service times")
	case c.PrefetchK < 0:
		return fmt.Errorf("hust: negative prefetch degree")
	}
	return nil
}

// MDS is the simulated metadata server.
type MDS struct {
	cfg   MDSConfig
	eng   *sim.Engine
	srv   *sim.Server
	cache *cache.LRU
	store *kvstore.Store
	pred  predictors.Predictor

	resp         metrics.LatencyHist
	prefetchSent uint64
	storeReads   uint64
}

// NewMDS builds a metadata server on the given engine. store may be nil, in
// which case an in-memory store is created. pred drives prefetching
// (predictors.None disables it).
func NewMDS(eng *sim.Engine, cfg MDSConfig, store *kvstore.Store, pred predictors.Predictor) (*MDS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		var err error
		store, err = kvstore.Open("")
		if err != nil {
			return nil, err
		}
	}
	return &MDS{
		cfg:   cfg,
		eng:   eng,
		srv:   sim.NewServer(eng, cfg.Workers),
		cache: cache.NewLRU(cfg.CacheCapacity),
		store: store,
		pred:  pred,
	}, nil
}

// NewFARMERMDS builds an MDS whose prefetcher is a FARMER miner. When
// mc.Shards is 0 the miner is striped to match cfg.Workers — the
// configuration a real deployment would run, where each metadata service
// thread mines without contending on a single model lock. The simulator
// itself is a single-goroutine discrete-event engine, so here the stripe
// width is modeled configuration, not actual parallelism; sharded and
// single-lock mining produce identical results either way (see
// core.ShardedModel), and mc.Shards = 1 selects the single-lock miner.
func NewFARMERMDS(eng *sim.Engine, cfg MDSConfig, store *kvstore.Store, mc core.Config) (*MDS, error) {
	if mc.Shards == 0 {
		mc.Shards = cfg.Workers
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	return NewMDS(eng, cfg, store, predictors.NewFPA(core.NewSharded(mc)))
}

// metaKey renders a store key for a file's metadata record.
func metaKey(f trace.FileID) []byte {
	k := make([]byte, 5)
	k[0] = 'm'
	binary.BigEndian.PutUint32(k[1:], uint32(f))
	return k
}

// PopulateStore writes a metadata record for every file in the trace into
// the backing store, as HUSt's MDS would hold before replay.
func (m *MDS) PopulateStore(t *trace.Trace) error {
	val := make([]byte, 64) // typical inode-sized metadata blob
	for f := 0; f < t.FileCount; f++ {
		binary.LittleEndian.PutUint32(val, uint32(f))
		if err := m.store.Put(metaKey(trace.FileID(f)), val); err != nil {
			return err
		}
	}
	return nil
}

// Demand submits a client metadata request for r at the current virtual
// time. done (optional) runs at completion with the request's response time.
func (m *MDS) Demand(r *trace.Record, done func(resp time.Duration)) {
	hit := m.cache.Access(r.File)
	service := m.cfg.StoreReadTime
	if hit {
		service = m.cfg.CacheHitTime
	} else {
		m.storeReads++
		// Perform the actual store lookup so the data path is real.
		if _, ok := m.store.Get(metaKey(r.File)); !ok {
			// Unknown file: creation path — install it.
			_ = m.store.Put(metaKey(r.File), make([]byte, 64))
		}
	}
	m.srv.Submit(sim.PriorityDemand, &sim.Request{
		Service: service,
		Done: func(wait, total time.Duration) {
			m.resp.Observe(total)
			if done != nil {
				done(total)
			}
		},
	})

	// Mining + prefetch issue happen on the demand path (the paper's
	// "mining and evaluating utility" hooks the request stream).
	m.pred.Record(r)
	if m.cfg.PrefetchK > 0 {
		m.issuePrefetches(r.File)
	}
}

func (m *MDS) issuePrefetches(f trace.FileID) {
	cands := m.pred.Predict(f, m.cfg.PrefetchK)
	if len(cands) == 0 {
		return
	}
	batched := false
	for _, c := range cands {
		if m.cache.Contains(c) {
			continue
		}
		service := m.cfg.StoreReadTime
		if m.cfg.PrefetchBatch {
			if batched {
				// Subsequent members of the batch ride the same I/O: only
				// CPU cost.
				service = m.cfg.CacheHitTime
			}
			batched = true
		}
		m.prefetchSent++
		m.storeReads++
		target := c
		m.srv.Submit(sim.PriorityPrefetch, &sim.Request{
			Service: service,
			Done: func(wait, total time.Duration) {
				// Metadata arrives: install into the cache unless the
				// demand path beat us to it.
				m.store.Get(metaKey(target))
				m.cache.Prefetch(target)
			},
		})
	}
}

// Stats is the per-run MDS outcome.
type Stats struct {
	Cache          cache.Metrics
	AvgResponse    time.Duration
	P95Response    time.Duration
	MaxResponse    time.Duration
	Demand         uint64
	PrefetchIssued uint64
	StoreReads     uint64
	AvgDemandWait  time.Duration
	Utilization    float64
}

// Finish folds residual prefetch waste and returns the stats.
func (m *MDS) Finish() Stats {
	return Stats{
		Cache:          m.cache.Finish(),
		AvgResponse:    m.resp.Mean(),
		P95Response:    m.resp.Quantile(0.95),
		MaxResponse:    m.resp.Max(),
		Demand:         m.resp.Count(),
		PrefetchIssued: m.prefetchSent,
		StoreReads:     m.storeReads,
		AvgDemandWait:  m.srv.AvgWait(sim.PriorityDemand),
		Utilization:    m.srv.Utilization(),
	}
}

// Cache exposes the metadata cache (tests).
func (m *MDS) Cache() *cache.LRU { return m.cache }

// Predictor exposes the active predictor.
func (m *MDS) Predictor() predictors.Predictor { return m.pred }
