// Package hust simulates the object-based storage system the paper
// prototypes FARMER on (§5.1): clients issue file requests; a metadata
// server (MDS) answers them from an LRU metadata cache backed by a
// Berkeley-DB-style store; object storage devices (OSDs) serve the data
// path. The MDS implements the paper's priority-based request scheduling —
// demand requests are served ahead of queued prefetch requests — and hosts
// the pluggable prefetch predictor (FARMER's FPA, Nexus, or none/LRU).
package hust

import (
	"encoding/binary"
	"fmt"
	"time"

	"farmer/internal/cache"
	"farmer/internal/core"
	"farmer/internal/kvstore"
	"farmer/internal/metrics"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
)

// MDSConfig parameterises the metadata server model.
type MDSConfig struct {
	// CacheCapacity is the metadata cache size in entries.
	CacheCapacity int
	// Workers is the number of concurrent metadata service threads.
	Workers int
	// CacheHitTime is the service time of a request satisfied from cache.
	CacheHitTime time.Duration
	// StoreReadTime is the service time of a metadata store (Berkeley DB)
	// lookup on a cache miss, dominated by the disk access.
	StoreReadTime time.Duration
	// PrefetchK is how many Correlator-List entries are prefetched per
	// demand access (the prefetching degree).
	PrefetchK int
	// PrefetchBatch treats a batch of prefetches triggered by one demand
	// access as a single store I/O (grouped layout, §4.2); otherwise each
	// prefetch is its own store read.
	PrefetchBatch bool
	// MineTime is the modeled CPU cost of running the four mining stages for
	// one record. With AsyncPrefetch false it inflates every demand request's
	// service time — mining sits on the demand path, the configuration the
	// paper prototypes. 0 models free mining (the pre-async legacy behavior).
	MineTime time.Duration
	// AsyncPrefetch decouples mining and prediction from the demand path:
	// demand service consults only the metadata cache and the miner's
	// already-materialized Correlator-List snapshot, while mining and
	// prediction run on a separate mining station modeling the shard
	// workers (see core.ShardedModel.Tap and internal/prefetch for the
	// real concurrent pipeline this virtual-time model mirrors).
	AsyncPrefetch bool
	// MinerWorkers sizes the async mining station; 0 matches Workers.
	MinerWorkers int
	// PrefetchQueue bounds the backlog of queued prefetch requests: beyond
	// it the oldest queued prefetch is dropped (and counted), so a mining
	// burst degrades prefetch coverage instead of demand latency.
	// 0 = unbounded (legacy).
	PrefetchQueue int
	// CacheStripes selects the striped concurrent metadata cache
	// (cache.StripedLRU) with this many lock stripes instead of the
	// single-lock LRU. 0 keeps the single-lock cache — exact for the
	// single-threaded DES; striping is for deployments driving one MDS
	// cache from many goroutines.
	CacheStripes int
	// ExternalMiner marks mining as driven from outside the MDS — the
	// cluster-level global dispatcher. Demand performs only cache/store
	// service (no predictor Record, no prefetch issue); the external driver
	// applies mined state itself, prices mining CPU through SubmitMine and
	// issues prefetches through IssuePrefetches. Requires AsyncPrefetch,
	// since the mining station carries the externally submitted work.
	ExternalMiner bool
}

// DefaultMDSConfig returns calibrated service times: a cache hit costs
// 0.05ms of MDS CPU; a store miss costs 2ms (disk-bound Berkeley DB read).
func DefaultMDSConfig() MDSConfig {
	return MDSConfig{
		CacheCapacity: 256,
		Workers:       4,
		CacheHitTime:  50 * time.Microsecond,
		StoreReadTime: 2 * time.Millisecond,
		PrefetchK:     4,
		PrefetchBatch: true,
	}
}

// Validate reports configuration errors.
func (c MDSConfig) Validate() error {
	switch {
	case c.CacheCapacity <= 0:
		return fmt.Errorf("hust: cache capacity %d", c.CacheCapacity)
	case c.Workers <= 0:
		return fmt.Errorf("hust: workers %d", c.Workers)
	case c.CacheHitTime <= 0 || c.StoreReadTime <= 0:
		return fmt.Errorf("hust: non-positive service times")
	case c.PrefetchK < 0:
		return fmt.Errorf("hust: negative prefetch degree")
	case c.MineTime < 0:
		return fmt.Errorf("hust: negative mine time")
	case c.MinerWorkers < 0:
		return fmt.Errorf("hust: negative miner workers")
	case c.PrefetchQueue < 0:
		return fmt.Errorf("hust: negative prefetch queue bound")
	case c.CacheStripes < 0:
		return fmt.Errorf("hust: negative cache stripes")
	case c.CacheStripes > c.CacheCapacity:
		return fmt.Errorf("hust: cache stripes %d exceed capacity %d", c.CacheStripes, c.CacheCapacity)
	case c.ExternalMiner && !c.AsyncPrefetch:
		return fmt.Errorf("hust: ExternalMiner requires AsyncPrefetch (the mining station)")
	}
	return nil
}

// MDS is the simulated metadata server.
type MDS struct {
	cfg   MDSConfig
	eng   *sim.Engine
	srv   *sim.Server
	miner *sim.Server // async mining station (nil in sync mode)
	cache cache.Cache // single-lock LRU, or StripedLRU with CacheStripes > 0
	store *kvstore.Store
	pred  predictors.Predictor

	resp         metrics.LatencyHist
	prefetchSent uint64
	storeReads   uint64
}

// NewMDS builds a metadata server on the given engine. store may be nil, in
// which case an in-memory store is created. pred drives prefetching
// (predictors.None disables it).
func NewMDS(eng *sim.Engine, cfg MDSConfig, store *kvstore.Store, pred predictors.Predictor) (*MDS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		var err error
		store, err = kvstore.Open("")
		if err != nil {
			return nil, err
		}
	}
	var mc cache.Cache = cache.NewLRU(cfg.CacheCapacity)
	if cfg.CacheStripes > 0 {
		mc = cache.NewStripedLRU(cfg.CacheCapacity, cfg.CacheStripes)
	}
	m := &MDS{
		cfg:   cfg,
		eng:   eng,
		srv:   sim.NewServer(eng, cfg.Workers),
		cache: mc,
		store: store,
		pred:  pred,
	}
	if cfg.PrefetchQueue > 0 {
		m.srv.LimitQueue(sim.PriorityPrefetch, cfg.PrefetchQueue)
	}
	if cfg.AsyncPrefetch {
		mw := cfg.MinerWorkers
		if mw <= 0 {
			mw = cfg.Workers
		}
		m.miner = sim.NewServer(eng, mw)
	}
	return m, nil
}

// NewFARMERMDS builds an MDS whose prefetcher is a FARMER miner. When
// mc.Shards is 0 the miner is striped to match cfg.Workers — the
// configuration a real deployment would run, where each metadata service
// thread mines without contending on a single model lock. The simulator
// itself is a single-goroutine discrete-event engine, so here the stripe
// width is modeled configuration, not actual parallelism; sharded and
// single-lock mining produce identical results either way (see
// core.ShardedModel), and mc.Shards = 1 selects the single-lock miner.
//
// With cfg.AsyncPrefetch the demand path consults only the cache and the
// miner's already-materialized Correlator-List snapshot; mining and
// prediction run on the mining station, which is sized to the miner's
// stripe count (the shard workers) unless cfg.MinerWorkers overrides it.
// Records reach the miner in demand-arrival order either way, so the mined
// state is bit-identical to the synchronous configuration (asserted by
// internal/replay).
func NewFARMERMDS(eng *sim.Engine, cfg MDSConfig, store *kvstore.Store, mc core.Config) (*MDS, error) {
	if mc.Shards == 0 {
		mc.Shards = cfg.Workers
	}
	if cfg.AsyncPrefetch && cfg.MinerWorkers == 0 {
		cfg.MinerWorkers = mc.Shards
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	return NewMDS(eng, cfg, store, predictors.NewFPA(core.NewSharded(mc)))
}

// metaKey renders a store key for a file's metadata record.
func metaKey(f trace.FileID) []byte {
	k := make([]byte, 5)
	k[0] = 'm'
	binary.BigEndian.PutUint32(k[1:], uint32(f))
	return k
}

// PopulateStore writes a metadata record for every file in the trace into
// the backing store, as HUSt's MDS would hold before replay.
func (m *MDS) PopulateStore(t *trace.Trace) error {
	val := make([]byte, 64) // typical inode-sized metadata blob
	for f := 0; f < t.FileCount; f++ {
		binary.LittleEndian.PutUint32(val, uint32(f))
		if err := m.store.Put(metaKey(trace.FileID(f)), val); err != nil {
			return err
		}
	}
	return nil
}

// Demand submits a client metadata request for r at the current virtual
// time. done (optional) runs at completion with the request's response time.
//
// In the synchronous configuration mining and prefetch issue happen on the
// demand path (the paper's "mining and evaluating utility" hooks the request
// stream) and MineTime inflates the demand service time. With AsyncPrefetch
// the demand request carries only the cache/store cost, and the record is
// handed to the mining station: its completion callback — the virtual-time
// mirror of a prefetch.Pipeline tap event — feeds the miner and issues the
// prefetches. The station is FIFO with uniform service times, so records are
// mined in demand-arrival order and the mined state stays bit-identical to
// the synchronous path; only prefetch timing (coverage) differs.
func (m *MDS) Demand(r *trace.Record, done func(resp time.Duration)) {
	hit := m.cache.Access(r.File)
	service := m.cfg.StoreReadTime
	if hit {
		service = m.cfg.CacheHitTime
	} else {
		m.storeReads++
		// Perform the actual store lookup so the data path is real.
		if _, ok := m.store.Get(metaKey(r.File)); !ok {
			// Unknown file: creation path — install it.
			_ = m.store.Put(metaKey(r.File), make([]byte, 64))
		}
	}
	// In sync mode with priced mining, the service thread mines as part of
	// the request, so its predictions only exist once the request completes
	// (wait + service, mining included) — prefetches issue from the Done
	// callback. Issuing any earlier would hand the sync pipeline prefetch
	// timing its own modeled mining cannot achieve.
	issueOnDone := false
	if !m.cfg.AsyncPrefetch {
		service += m.cfg.MineTime
		issueOnDone = m.cfg.MineTime > 0 && m.cfg.PrefetchK > 0
	}
	rec := r
	m.srv.Submit(sim.PriorityDemand, &sim.Request{
		Service: service,
		Done: func(wait, total time.Duration) {
			m.resp.Observe(total)
			if done != nil {
				done(total)
			}
			if issueOnDone {
				m.issuePrefetches(rec.File)
			}
		},
	})

	if m.cfg.AsyncPrefetch {
		if m.cfg.ExternalMiner {
			// The cluster dispatcher mines this record and calls back via
			// SubmitMine/IssuePrefetches; the demand path is already done.
			return
		}
		m.miner.Submit(sim.PriorityDemand, &sim.Request{
			Service: m.cfg.MineTime,
			Done: func(wait, total time.Duration) {
				m.pred.Record(rec)
				if m.cfg.PrefetchK > 0 {
					m.issuePrefetches(rec.File)
				}
			},
		})
		return
	}
	// Record stays at arrival: mined-state order is the demand-arrival
	// order in both sync and async modes (the bit-identical invariant).
	m.pred.Record(r)
	if m.cfg.PrefetchK > 0 && !issueOnDone {
		m.issuePrefetches(r.File)
	}
}

// SubmitMine prices externally driven mining work on the MDS's mining
// station: after any queueing behind earlier mining work plus service
// virtual time, done runs. It is the ExternalMiner counterpart of the
// submission Demand makes in ordinary async mode.
func (m *MDS) SubmitMine(service time.Duration, done func()) {
	m.miner.Submit(sim.PriorityDemand, &sim.Request{
		Service: service,
		Done: func(wait, total time.Duration) {
			if done != nil {
				done()
			}
		},
	})
}

// IssuePrefetches exposes the prefetch path to an external mining driver:
// predict up to PrefetchK successors of f and queue prefetch requests for
// the ones not already cached.
func (m *MDS) IssuePrefetches(f trace.FileID) { m.issuePrefetches(f) }

func (m *MDS) issuePrefetches(f trace.FileID) {
	m.PrefetchFiles(m.pred.Predict(f, m.cfg.PrefetchK))
}

// PrefetchFiles queues prefetch requests for specific candidate files — the
// hook a cluster-level miner uses to route a prediction to the server that
// will actually see the successor's demand. One call is one batch for
// PrefetchBatch pricing, exactly like the predictions of a single demand
// access.
func (m *MDS) PrefetchFiles(cands []trace.FileID) {
	if len(cands) == 0 {
		return
	}
	// Batch pricing is decided at service entry, not submission: whichever
	// member of the batch actually reaches service first pays the store
	// I/O, and later members ride it at CPU cost. Deciding at submit time
	// would let a bounded queue drop the priced leader while its cheap
	// followers survive and complete with the store read never paid.
	var batchPaid *bool
	if m.cfg.PrefetchBatch {
		batchPaid = new(bool)
	}
	for _, c := range cands {
		if m.cache.Contains(c) {
			continue
		}
		var serviceFn func() time.Duration
		if m.cfg.PrefetchBatch {
			serviceFn = func() time.Duration {
				if *batchPaid {
					return m.cfg.CacheHitTime
				}
				*batchPaid = true
				return m.cfg.StoreReadTime
			}
		}
		m.prefetchSent++
		target := c
		m.srv.Submit(sim.PriorityPrefetch, &sim.Request{
			Service:   m.cfg.StoreReadTime,
			ServiceFn: serviceFn,
			Done: func(wait, total time.Duration) {
				// Metadata arrives: install into the cache unless the
				// demand path beat us to it. The store read is accounted
				// here, at service time, so prefetches dropped from a
				// bounded queue cost no I/O.
				m.storeReads++
				m.store.Get(metaKey(target))
				m.cache.Prefetch(target)
			},
		})
	}
}

// Stats is the per-run MDS outcome.
type Stats struct {
	Cache          cache.Metrics
	AvgResponse    time.Duration
	P95Response    time.Duration
	MaxResponse    time.Duration
	Demand         uint64
	PrefetchIssued uint64
	// PrefetchDone counts prefetches that finished service;
	// PrefetchDropped counts those evicted from a bounded prefetch queue
	// before service. After a drained run Issued = Done + Dropped.
	PrefetchDone    uint64
	PrefetchDropped uint64
	StoreReads      uint64
	AvgDemandWait   time.Duration
	Utilization     float64
	// MineAvgWait is the mining station's mean queueing delay — the mining
	// backlog an async run absorbed off the demand path (0 in sync mode).
	MineAvgWait time.Duration
	// MineUtilization is the mining station's busy fraction. Sync runs fold
	// mining into the MDS Utilization; async runs report it here instead,
	// so cross-mode comparisons must read both fields.
	MineUtilization float64
}

// Finish folds residual prefetch waste and returns the stats.
func (m *MDS) Finish() Stats {
	s := Stats{
		Cache:           m.cache.Finish(),
		AvgResponse:     m.resp.Mean(),
		P95Response:     m.resp.Quantile(0.95),
		MaxResponse:     m.resp.Max(),
		Demand:          m.resp.Count(),
		PrefetchIssued:  m.prefetchSent,
		PrefetchDone:    m.srv.Completed(sim.PriorityPrefetch),
		PrefetchDropped: m.srv.Dropped(sim.PriorityPrefetch),
		StoreReads:      m.storeReads,
		AvgDemandWait:   m.srv.AvgWait(sim.PriorityDemand),
		Utilization:     m.srv.Utilization(),
	}
	if m.miner != nil {
		s.MineAvgWait = m.miner.AvgWait(sim.PriorityDemand)
		s.MineUtilization = m.miner.Utilization()
	}
	return s
}

// Cache exposes the metadata cache (tests).
func (m *MDS) Cache() cache.Cache { return m.cache }

// Predictor exposes the active predictor.
func (m *MDS) Predictor() predictors.Predictor { return m.pred }
