package hust

import (
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func lruMDS(cfg MDSConfig) func(*sim.Engine) (*MDS, error) {
	return func(e *sim.Engine) (*MDS, error) { return NewMDS(e, cfg, nil, predictors.NewNone()) }
}

func farmerMDS(cfg MDSConfig, hasPaths bool) func(*sim.Engine) (*MDS, error) {
	return func(e *sim.Engine) (*MDS, error) {
		mc := core.DefaultConfig()
		mc.Mask = vsm.DefaultMask(hasPaths)
		return NewMDS(e, cfg, nil, predictors.NewFPA(core.New(mc)))
	}
}

func TestMDSConfigValidate(t *testing.T) {
	bad := []MDSConfig{
		{},
		{CacheCapacity: 1},
		{CacheCapacity: 1, Workers: 1},
		{CacheCapacity: 1, Workers: 1, CacheHitTime: 1, StoreReadTime: 1, PrefetchK: -1},
		// ExternalMiner without the mining station to carry its work.
		{CacheCapacity: 1, Workers: 1, CacheHitTime: 1, StoreReadTime: 1, ExternalMiner: true},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultMDSConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMDSHitFasterThanMiss(t *testing.T) {
	eng := sim.New()
	cfg := DefaultMDSConfig()
	mds, err := NewMDS(eng, cfg, nil, predictors.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	var missResp, hitResp time.Duration
	r := &trace.Record{File: 1}
	mds.Demand(r, func(d time.Duration) { missResp = d })
	eng.Run()
	mds.Demand(r, func(d time.Duration) { hitResp = d })
	eng.Run()
	if missResp != cfg.StoreReadTime {
		t.Fatalf("miss response = %v, want %v", missResp, cfg.StoreReadTime)
	}
	if hitResp != cfg.CacheHitTime {
		t.Fatalf("hit response = %v, want %v", hitResp, cfg.CacheHitTime)
	}
}

func TestMDSPrefetchInstallsIntoCache(t *testing.T) {
	eng := sim.New()
	cfg := DefaultMDSConfig()
	mc := core.DefaultConfig()
	mc.MaxStrength = 0.0
	fpa := predictors.NewFPA(core.New(mc))
	mds, err := NewMDS(eng, cfg, nil, fpa)
	if err != nil {
		t.Fatal(err)
	}
	// Teach the model 0 -> 1 (same user/dir).
	mk := func(f trace.FileID) *trace.Record {
		return &trace.Record{File: f, UID: 1, PID: 1, Path: "/d/x"}
	}
	for i := 0; i < 5; i++ {
		mds.Demand(mk(0), nil)
		eng.Run()
		mds.Demand(mk(1), nil)
		eng.Run()
	}
	// A demand on 0 must now prefetch 1.
	mds.Cache().Invalidate(1)
	mds.Demand(mk(0), nil)
	eng.Run()
	if !mds.Cache().Contains(1) {
		t.Fatal("prefetch did not install file 1")
	}
	if mds.Finish().PrefetchIssued == 0 {
		t.Fatal("no prefetches recorded")
	}
}

func TestReplaySmallTraceRuns(t *testing.T) {
	tr := tracegen.HP(3000).MustGenerate()
	cfg := DefaultReplayConfig()
	res, err := Replay(tr, cfg, lruMDS(cfg.MDS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Demand != 3000 {
		t.Fatalf("served %d demands", res.Stats.Demand)
	}
	if res.Stats.AvgResponse <= 0 || res.ClientAvg <= res.Stats.AvgResponse {
		t.Fatalf("latencies wrong: %+v clientAvg=%v", res.Stats, res.ClientAvg)
	}
	if res.Policy != "LRU" || res.Trace != "HP" {
		t.Fatalf("labels wrong: %+v", res)
	}
}

func TestReplayEmptyTraceErrors(t *testing.T) {
	cfg := DefaultReplayConfig()
	if _, err := Replay(&trace.Trace{Name: "empty"}, cfg, lruMDS(cfg.MDS)); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayMaxRecords(t *testing.T) {
	tr := tracegen.INS(5000).MustGenerate()
	cfg := DefaultReplayConfig()
	cfg.MaxRecords = 1000
	res, err := Replay(tr, cfg, lruMDS(cfg.MDS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Demand != 1000 {
		t.Fatalf("served %d, want 1000", res.Stats.Demand)
	}
}

func TestReplayTraceTimestamps(t *testing.T) {
	tr := tracegen.INS(2000).MustGenerate()
	cfg := DefaultReplayConfig()
	cfg.ArrivalGap = 0
	cfg.TimeScale = 10 // stretch to keep the queue stable
	res, err := Replay(tr, cfg, lruMDS(cfg.MDS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Demand != 2000 {
		t.Fatalf("served %d", res.Stats.Demand)
	}
	if res.SimTime < time.Duration(float64(tr.Records[1999].Time)*10) {
		t.Fatalf("sim time %v shorter than scaled trace span", res.SimTime)
	}
}

// TestFARMERBeatsLRUOnRegularTrace is the headline shape: on a workload with
// strong correlation structure, FPA must beat plain LRU on both hit ratio
// and response time.
func TestFARMERBeatsLRUOnRegularTrace(t *testing.T) {
	tr := tracegen.HP(12000).MustGenerate()
	cfg := DefaultReplayConfig()
	lru, err := Replay(tr, cfg, lruMDS(cfg.MDS))
	if err != nil {
		t.Fatal(err)
	}
	fpa, err := Replay(tr, cfg, farmerMDS(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	if fpa.Stats.Cache.HitRatio() <= lru.Stats.Cache.HitRatio() {
		t.Fatalf("FPA hit ratio %.3f <= LRU %.3f",
			fpa.Stats.Cache.HitRatio(), lru.Stats.Cache.HitRatio())
	}
	if fpa.Stats.AvgResponse >= lru.Stats.AvgResponse {
		t.Fatalf("FPA response %v >= LRU %v", fpa.Stats.AvgResponse, lru.Stats.AvgResponse)
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := tracegen.RES(4000).MustGenerate()
	cfg := DefaultReplayConfig()
	a, err := Replay(tr, cfg, farmerMDS(cfg.MDS, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, cfg, farmerMDS(cfg.MDS, false))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestOSDReadTimes(t *testing.T) {
	eng := sim.New()
	osd := NewOSD(eng, DefaultOSDConfig())
	var seekRead, seqRead time.Duration
	osd.Read(80_000_000, false, func(d time.Duration) { seekRead = d })
	eng.Run()
	osd.Read(80_000_000, true, func(d time.Duration) { seqRead = d })
	eng.Run()
	// 80MB at 80MB/s = 1s transfer; non-sequential adds a 5ms seek.
	if seqRead != time.Second {
		t.Fatalf("sequential read = %v, want 1s", seqRead)
	}
	if seekRead != time.Second+5*time.Millisecond {
		t.Fatalf("random read = %v, want 1.005s", seekRead)
	}
	if osd.IOs() != 2 {
		t.Fatalf("IOs = %d", osd.IOs())
	}
}

func TestOSDDefaultsNormalised(t *testing.T) {
	eng := sim.New()
	osd := NewOSD(eng, OSDConfig{})
	done := false
	osd.Read(1024, true, func(time.Duration) { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-config OSD did not serve")
	}
}

func TestPrefetchBatchCheaper(t *testing.T) {
	tr := tracegen.HP(6000).MustGenerate()
	cfg := DefaultReplayConfig()
	single, err := Replay(tr, cfg, farmerMDS(cfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.MDS.PrefetchBatch = true
	batched, err := Replay(tr, bcfg, farmerMDS(bcfg.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	if batched.Stats.Utilization > single.Stats.Utilization {
		t.Fatalf("batching increased utilisation: %.3f vs %.3f",
			batched.Stats.Utilization, single.Stats.Utilization)
	}
}

func TestMDSUnknownFileCreationPath(t *testing.T) {
	eng := sim.New()
	mds, err := NewMDS(eng, DefaultMDSConfig(), nil, predictors.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	// No PopulateStore: the demand must install the metadata on the fly.
	mds.Demand(&trace.Record{File: 7}, nil)
	eng.Run()
	st := mds.Finish()
	if st.StoreReads != 1 || st.Demand != 1 {
		t.Fatalf("creation path stats wrong: %+v", st)
	}
}

func TestMDSStatsCoherence(t *testing.T) {
	tr := tracegen.RES(5000).MustGenerate()
	cfg := DefaultReplayConfig()
	res, err := Replay(tr, cfg, farmerMDS(cfg.MDS, false))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Cache.Lookups != st.Demand {
		t.Fatalf("lookups %d != demand %d", st.Cache.Lookups, st.Demand)
	}
	// A prefetch that completes after the demand path already installed the
	// entry is issued but never inserted, so insertions <= issues.
	if st.Cache.Prefetched > st.PrefetchIssued {
		t.Fatalf("cache prefetched %d > issued %d", st.Cache.Prefetched, st.PrefetchIssued)
	}
	if st.Cache.PrefetchUsed+st.Cache.PrefetchWasted != st.Cache.Prefetched {
		t.Fatalf("prefetch conservation broken: %+v", st.Cache)
	}
	if st.P95Response < st.AvgResponse/4 {
		t.Fatalf("p95 %v implausibly below mean %v", st.P95Response, st.AvgResponse)
	}
	// P95 is a log-bucket upper bound, so it may overshoot the exact max by
	// at most one bucket (2x).
	if st.MaxResponse*2 < st.P95Response {
		t.Fatalf("max %v far below p95 %v", st.MaxResponse, st.P95Response)
	}
}

// TestPrefetchDoesNotStarveDemand: even with heavy prefetch traffic, the
// demand queue's average wait stays below the prefetch-free saturation
// bound because demand has strict priority.
func TestPrefetchDoesNotStarveDemand(t *testing.T) {
	tr := tracegen.HP(8000).MustGenerate()
	cfg := DefaultReplayConfig()
	aggressive := cfg
	aggressive.MDS.PrefetchK = 16
	aggressive.MDS.PrefetchBatch = false
	res, err := Replay(tr, aggressive, farmerMDS(aggressive.MDS, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AvgDemandWait > 10*aggressive.MDS.StoreReadTime {
		t.Fatalf("demand wait %v exploded under prefetch load", res.Stats.AvgDemandWait)
	}
}

// TestFARMERMDSShardedMatchesSingleLock replays the same trace through an
// MDS whose miner is single-lock and one striped across shards. Sharded
// mining is exactly equivalent, so every simulation outcome — hit ratio,
// prefetches, response times — must be identical.
func TestFARMERMDSShardedMatchesSingleLock(t *testing.T) {
	tr := tracegen.HP(6000).MustGenerate()
	replay := func(shards int) Stats {
		cfg := DefaultReplayConfig()
		res, err := Replay(tr, cfg, func(e *sim.Engine) (*MDS, error) {
			mc := core.DefaultConfig()
			mc.Mask = vsm.DefaultMask(tr.HasPaths)
			mc.Shards = shards
			return NewFARMERMDS(e, cfg.MDS, nil, mc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	single, sharded := replay(1), replay(4)
	if single != sharded {
		t.Fatalf("sharded miner changed the simulation:\n single  %+v\n sharded %+v", single, sharded)
	}
	if single.PrefetchIssued == 0 {
		t.Fatal("no prefetches issued; comparison is vacuous")
	}
}

// TestFARMERMDSDefaultsShardsToWorkers checks the worker-matched striping.
func TestFARMERMDSDefaultsShardsToWorkers(t *testing.T) {
	eng := sim.New()
	cfg := DefaultMDSConfig()
	mds, err := NewFARMERMDS(eng, cfg, nil, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fpa, ok := mds.Predictor().(*predictors.FPA)
	if !ok {
		t.Fatalf("predictor is %T, want *predictors.FPA", mds.Predictor())
	}
	sm, ok := fpa.Miner().(*core.ShardedModel)
	if !ok {
		t.Fatalf("miner is %T, want *core.ShardedModel", fpa.Miner())
	}
	if sm.Shards() != cfg.Workers {
		t.Fatalf("shards = %d, want %d workers", sm.Shards(), cfg.Workers)
	}
}
