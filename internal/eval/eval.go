// Package eval scores how *accurately* a miner discovers file correlations,
// independently of any cache: mined successor sets are compared against the
// workload generator's ground-truth correlation groups. This makes the
// paper's central claim — "FARMER can mine and evaluate file correlations
// more accurately and effectively" — directly measurable as
// precision/recall/F1, for FARMER and for every baseline predictor.
package eval

import (
	"fmt"
	"sort"

	"farmer/internal/predictors"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// Quality aggregates mining-accuracy metrics over all files that have both
// mined successors and ground truth.
type Quality struct {
	Files        int     // files scored
	Precision    float64 // mean fraction of mined successors that are true group peers
	Recall       float64 // mean fraction of group peers (capped at k) that were mined
	F1           float64
	MinedPerFile float64 // mean mined-successor count (≤ k)
	TruthPerFile float64 // mean ground-truth peer count
}

// String renders the quality triple.
func (q Quality) String() string {
	return fmt.Sprintf("files=%d precision=%.3f recall=%.3f f1=%.3f", q.Files, q.Precision, q.Recall, q.F1)
}

// Score mines the trace with the predictor (streaming over every record)
// and evaluates its top-k successor sets against the trace's ground-truth
// groups. Noise files (no ground truth) are excluded from scoring but are
// presented to the miner, exactly as a real system would see them.
func Score(t *trace.Trace, p predictors.Predictor, k int) Quality {
	for i := range t.Records {
		p.Record(&t.Records[i])
	}
	return ScoreMined(t, p, k)
}

// ScoreMined evaluates an already-trained predictor against the trace's
// ground truth without feeding it again.
func ScoreMined(t *trace.Trace, p predictors.Predictor, k int) Quality {
	truth := tracegen.GroundTruth(t)
	var q Quality
	var sumP, sumR, sumMined, sumTruth float64

	// Deterministic iteration order.
	files := make([]trace.FileID, 0, len(truth))
	for f := range truth {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })

	for _, f := range files {
		peers := peersOf(truth, f)
		if len(peers) == 0 {
			continue
		}
		mined := p.Predict(f, k)
		if len(mined) == 0 {
			// A file the miner knows nothing about scores zero recall; it
			// still counts — silence is not accuracy.
			q.Files++
			sumTruth += float64(min(len(peers), k))
			continue
		}
		tp := 0
		for _, m := range mined {
			if peers[m] {
				tp++
			}
		}
		q.Files++
		sumP += float64(tp) / float64(len(mined))
		denom := min(len(peers), k)
		sumR += float64(tp) / float64(denom)
		sumMined += float64(len(mined))
		sumTruth += float64(denom)
	}
	if q.Files == 0 {
		return q
	}
	n := float64(q.Files)
	q.Precision = sumP / n
	q.Recall = sumR / n
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	q.MinedPerFile = sumMined / n
	q.TruthPerFile = sumTruth / n
	return q
}

func peersOf(truth map[trace.FileID][]trace.FileID, f trace.FileID) map[trace.FileID]bool {
	members := truth[f]
	if len(members) <= 1 {
		return nil
	}
	peers := make(map[trace.FileID]bool, len(members)-1)
	for _, m := range members {
		if m != f {
			peers[m] = true
		}
	}
	return peers
}
