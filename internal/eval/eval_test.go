package eval

import (
	"testing"

	"farmer/internal/core"
	"farmer/internal/predictors"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func fpaFor(t *trace.Trace) predictors.Predictor {
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(t.HasPaths)
	return predictors.NewFPA(core.New(cfg))
}

func TestScorePerfectOracle(t *testing.T) {
	tr := tracegen.HP(6000).MustGenerate()
	truth := tracegen.GroundTruth(tr)
	oracle := oraclePredictor{truth: truth}
	q := ScoreMined(tr, oracle, 4)
	if q.Precision < 0.999 {
		t.Fatalf("oracle precision = %v", q.Precision)
	}
	if q.Recall < 0.999 {
		t.Fatalf("oracle recall = %v", q.Recall)
	}
	if q.F1 < 0.999 {
		t.Fatalf("oracle F1 = %v", q.F1)
	}
}

// oraclePredictor answers straight from ground truth (upper bound).
type oraclePredictor struct {
	truth map[trace.FileID][]trace.FileID
}

func (oraclePredictor) Name() string         { return "oracle" }
func (oraclePredictor) Record(*trace.Record) {}
func (o oraclePredictor) Predict(f trace.FileID, k int) []trace.FileID {
	var out []trace.FileID
	for _, m := range o.truth[f] {
		if m != f {
			out = append(out, m)
		}
		if len(out) == k {
			break
		}
	}
	return out
}

func TestScoreSilentPredictorIsZero(t *testing.T) {
	tr := tracegen.HP(4000).MustGenerate()
	q := Score(tr, predictors.NewNone(), 4)
	if q.Recall != 0 || q.F1 != 0 {
		t.Fatalf("silent predictor scored: %+v", q)
	}
	if q.Files == 0 {
		t.Fatal("silent predictor skipped scoring entirely")
	}
}

// TestFARMERMoreAccurateThanNexus is the paper's core claim as a unit test:
// FARMER's mined successors match ground truth better than Nexus' on every
// workload profile.
func TestFARMERMoreAccurateThanNexus(t *testing.T) {
	for _, p := range tracegen.Profiles(15000) {
		tr := p.MustGenerate()
		fq := Score(tr, fpaFor(tr), 4)
		nq := Score(tr, predictors.NewNexus(predictors.DefaultNexusConfig()), 4)
		if fq.F1 <= nq.F1 {
			t.Errorf("%s: FARMER F1 %.3f <= Nexus F1 %.3f", p.Name, fq.F1, nq.F1)
		}
		if fq.Precision <= nq.Precision {
			t.Errorf("%s: FARMER precision %.3f <= Nexus precision %.3f", p.Name, fq.Precision, nq.Precision)
		}
	}
}

// TestFARMERMoreAccurateThanSequenceOnlyBaselines extends the comparison to
// the older sequence-only predictors the paper cites.
func TestFARMERMoreAccurateThanSequenceOnlyBaselines(t *testing.T) {
	tr := tracegen.HP(15000).MustGenerate()
	fq := Score(tr, fpaFor(tr), 4)
	baselines := []predictors.Predictor{
		predictors.NewLastSuccessor(),
		predictors.NewFirstSuccessor(),
		predictors.NewProbabilityGraph(2, 0.1),
		predictors.NewSDGraph(4),
	}
	for _, b := range baselines {
		bq := Score(tr, b, 4)
		if fq.F1 <= bq.F1 {
			t.Errorf("FARMER F1 %.3f <= %s F1 %.3f", fq.F1, b.Name(), bq.F1)
		}
	}
}

func TestQualityStringAndCounts(t *testing.T) {
	tr := tracegen.INS(5000).MustGenerate()
	q := Score(tr, fpaFor(tr), 4)
	if q.Files == 0 || q.TruthPerFile <= 0 {
		t.Fatalf("degenerate quality: %+v", q)
	}
	if s := q.String(); s == "" {
		t.Fatal("empty String")
	}
	if q.Precision < 0 || q.Precision > 1 || q.Recall < 0 || q.Recall > 1 {
		t.Fatalf("metrics out of range: %+v", q)
	}
}

func TestEmptyTrace(t *testing.T) {
	q := ScoreMined(&trace.Trace{}, predictors.NewNone(), 4)
	if q.Files != 0 || q.F1 != 0 {
		t.Fatalf("empty trace scored: %+v", q)
	}
}
