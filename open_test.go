package farmer_test

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"farmer"
)

// TestOpenInvalidConfig: every invalid configuration or option must come
// back as an error — never a panic — with a message naming the offender.
func TestOpenInvalidConfig(t *testing.T) {
	valid := farmer.DefaultConfig()
	cases := []struct {
		name string
		cfg  func() farmer.Config
		opts []farmer.Option
		want string
	}{
		{
			name: "negative weight",
			cfg:  func() farmer.Config { c := valid; c.Weight = -0.1; return c },
			want: "weight",
		},
		{
			name: "weight above one",
			cfg:  func() farmer.Config { c := valid; c.Weight = 1.5; return c },
			want: "weight",
		},
		{
			name: "NaN weight",
			cfg:  func() farmer.Config { c := valid; c.Weight = math.NaN(); return c },
			want: "weight",
		},
		{
			name: "negative max_strength",
			cfg:  func() farmer.Config { c := valid; c.MaxStrength = -1; return c },
			want: "max_strength",
		},
		{
			name: "max_strength above one",
			cfg:  func() farmer.Config { c := valid; c.MaxStrength = 2; return c },
			want: "max_strength",
		},
		{
			name: "NaN max_strength",
			cfg:  func() farmer.Config { c := valid; c.MaxStrength = math.NaN(); return c },
			want: "max_strength",
		},
		{
			name: "negative correlator bound",
			cfg:  func() farmer.Config { c := valid; c.MaxCorrelators = -4; return c },
			want: "MaxCorrelators",
		},
		{
			name: "negative shards in config",
			cfg:  func() farmer.Config { c := valid; c.Shards = -2; return c },
			want: "Shards",
		},
		{
			name: "negative shards option",
			cfg:  func() farmer.Config { return valid },
			opts: []farmer.Option{farmer.WithShards(-1)},
			want: "WithShards",
		},
		{
			name: "empty store path",
			cfg:  func() farmer.Config { return valid },
			opts: []farmer.Option{farmer.WithStore("")},
			want: "WithStore",
		},
		{
			name: "negative prefetch degree",
			cfg:  func() farmer.Config { return valid },
			opts: []farmer.Option{farmer.WithPrefetcher(nil, farmer.PrefetchConfig{K: -1})},
			want: "WithPrefetcher",
		},
		{
			name: "load without store",
			cfg:  func() farmer.Config { return valid },
			opts: []farmer.Option{farmer.WithLoad()},
			want: "WithStore",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := farmer.Open(tc.cfg(), tc.opts...)
			if err == nil {
				m.Close()
				t.Fatal("Open accepted an invalid configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestDeprecatedConstructorsStillPanic: the compatibility wrappers keep
// their panic contract while delegating to the validated path.
func TestDeprecatedConstructorsStillPanic(t *testing.T) {
	bad := farmer.DefaultConfig()
	bad.Weight = 7
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"New", func() { farmer.New(bad) }},
		{"NewSharded", func() { farmer.NewSharded(bad) }},
		{"NewClusterMiner", func() { farmer.NewClusterMiner(bad, 2, nil) }},
		{"NewClusterMiner zero servers", func() { farmer.NewClusterMiner(farmer.DefaultConfig(), 0, nil) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("wrapper did not panic")
				}
			}()
			tc.call()
		})
	}
}

// TestOpenEquivalentToNewSharded: the option-style constructor must build
// the same miner the deprecated one did — bit-identical mined state.
func TestOpenEquivalentToNewSharded(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(3000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	cfg.Shards = 4
	old := farmer.NewSharded(cfg)
	old.FeedTraceParallel(tr)

	m, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.FeedBatch(context.Background(), tr.Records); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < tr.FileCount; f++ {
		if !reflect.DeepEqual(old.CorrelatorList(farmer.FileID(f)), m.CorrelatorList(farmer.FileID(f))) {
			t.Fatalf("file %d: Open-built miner diverged from NewSharded", f)
		}
	}
}

// TestMinerSaveLoadRoundTrip drives persistence through the Miner
// interface: save, reopen at a different shard count, load, compare.
func TestMinerSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "miner.wal")
	tr, err := farmer.Generate(farmer.INS(2000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()

	m1, err := farmer.Open(cfg, farmer.WithShards(3), farmer.WithStore(wal))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.FeedBatch(ctx, tr.Records); err != nil {
		t.Fatal(err)
	}
	if err := m1.Save(ctx); err != nil {
		t.Fatal(err)
	}
	want := make(map[int][]farmer.Correlator)
	for f := 0; f < tr.FileCount; f++ {
		want[f] = m1.CorrelatorList(farmer.FileID(f))
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen at a different stripe count with WithLoad: the load rebalances.
	m2, err := farmer.Open(cfg, farmer.WithShards(5), farmer.WithStore(wal), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for f := 0; f < tr.FileCount; f++ {
		if !reflect.DeepEqual(want[f], m2.CorrelatorList(farmer.FileID(f))) {
			t.Fatalf("file %d: reloaded state differs", f)
		}
	}
	st, err := m2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("reloaded fed %d, want %d", st.Fed, len(tr.Records))
	}
}

// TestMinerSaveWithoutStore: Save/Load on a storeless miner must fail with
// ErrNoStore, not panic.
func TestMinerSaveWithoutStore(t *testing.T) {
	m, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Save(context.Background()); !errors.Is(err, farmer.ErrNoStore) {
		t.Fatalf("Save without store: %v", err)
	}
	if err := m.Load(context.Background()); !errors.Is(err, farmer.ErrNoStore) {
		t.Fatalf("Load without store: %v", err)
	}
}

// TestOpenCorruptStore: a truncated and a bit-flipped WAL must fail Open
// with an error (never panic, never silently half-load), and RepairStore
// must make the store loadable again.
func TestOpenCorruptStore(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)-5] }},
		{"bit-flipped", func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			wal := filepath.Join(dir, "miner.wal")
			tr, err := farmer.Generate(farmer.INS(1500))
			if err != nil {
				t.Fatal(err)
			}
			cfg := farmer.ConfigFor(tr)
			ctx := context.Background()
			m, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(wal))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.FeedBatch(ctx, tr.Records); err != nil {
				t.Fatal(err)
			}
			if err := m.Save(ctx); err != nil {
				t.Fatal(err)
			}
			m.Close()

			data, err := os.ReadFile(wal)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(wal, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := farmer.OpenStore(wal); err == nil {
				t.Fatal("OpenStore accepted a corrupt WAL")
			}
			if _, err := farmer.Open(cfg, farmer.WithStore(wal), farmer.WithLoad()); err == nil {
				t.Fatal("Open(WithLoad) accepted a corrupt WAL")
			}
			if _, _, err := farmer.RepairStore(wal); err != nil {
				t.Fatal(err)
			}
			// Repair makes the store openable again. The mined state may be
			// gone (the repair cut everything after the corruption, and the
			// model's config record is written last), so a load either
			// succeeds or reports a clean error — never a panic or a silent
			// half-load.
			st, err := farmer.OpenStore(wal)
			if err != nil {
				t.Fatalf("OpenStore after repair: %v", err)
			}
			st.Close()
			if m2, err := farmer.Open(cfg, farmer.WithStore(wal), farmer.WithLoad()); err == nil {
				m2.Close()
			}
		})
	}
}

// TestOpenWithPrefetcher: the pipeline attached at Open must see ingestion
// and drain on Close.
func TestOpenWithPrefetcher(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(2000))
	if err != nil {
		t.Fatal(err)
	}
	var got []farmer.PrefetchCandidate
	sink := farmer.PrefetchSinkFunc(func(c farmer.PrefetchCandidate) { got = append(got, c) })
	m, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithShards(2),
		farmer.WithPrefetcher(sink, farmer.PrefetchConfig{K: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FeedBatch(context.Background(), tr.Records); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Prefetcher().Stats()
	if st.Events == 0 || st.Predicted == 0 {
		t.Fatalf("pipeline saw no traffic: %+v", st)
	}
	if uint64(len(got)) != st.Submitted {
		t.Fatalf("sink got %d candidates, pipeline submitted %d", len(got), st.Submitted)
	}
}

func TestPartitionerByName(t *testing.T) {
	for _, name := range []string{"stripe", "hash", "group"} {
		p, err := farmer.PartitionerByName(name)
		if err != nil || p == nil {
			t.Fatalf("%s: (%v, %v)", name, p, err)
		}
	}
	if _, err := farmer.PartitionerByName("bogus"); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}
