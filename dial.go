package farmer

import (
	"context"
	"time"

	"farmer/internal/rpc"
)

// RemoteMiner is a Miner served by a farmerd process reached over the wire
// protocol (internal/rpc): every call is a pipelined request on one
// connection, so concurrent callers share the link without head-of-line
// blocking on each other's round trips. Mined degrees cross the wire as
// exact float64 bit patterns — a remote miner fingerprints identically to
// the local miner it serves.
type RemoteMiner struct {
	c *rpc.Client
}

var _ Miner = (*RemoteMiner)(nil)

// Dial connects to a farmerd at a TCP address and returns the remote miner.
// ctx bounds the connection attempt only; per-call deadlines come from the
// contexts passed to the Miner methods.
func Dial(ctx context.Context, addr string) (*RemoteMiner, error) {
	c, err := rpc.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteMiner{c: c}, nil
}

// Ping round-trips an empty frame and reports the wall-clock latency — the
// liveness probe behind `farmerctl ping`.
func (m *RemoteMiner) Ping(ctx context.Context) (time.Duration, error) { return m.c.Ping(ctx) }

// Feed implements Miner: one record, one acked round trip.
func (m *RemoteMiner) Feed(ctx context.Context, r *Record) error { return m.c.Feed(ctx, r) }

// FeedBatch implements Miner: the whole batch travels as one frame and the
// server mines it with all shards in parallel before acking.
func (m *RemoteMiner) FeedBatch(ctx context.Context, records []Record) error {
	return m.c.FeedBatch(ctx, records)
}

// Predict implements Miner.
func (m *RemoteMiner) Predict(ctx context.Context, f FileID, k int) ([]FileID, error) {
	return m.c.Predict(ctx, f, k)
}

// Stats implements Miner.
func (m *RemoteMiner) Stats(ctx context.Context) (ModelStats, error) { return m.c.Stats(ctx) }

// Save implements Miner: the server checkpoints into its own store.
func (m *RemoteMiner) Save(ctx context.Context) error { return m.c.Save(ctx) }

// Load implements Miner: the server restores from its own store.
func (m *RemoteMiner) Load(ctx context.Context) error { return m.c.Load(ctx) }

// CorrelatorList fetches f's full Correlator List with bit-exact degrees —
// the read the cross-process fingerprint tests use.
func (m *RemoteMiner) CorrelatorList(ctx context.Context, f FileID) ([]Correlator, error) {
	return m.c.CorrelatorList(ctx, f)
}

// Close drains outstanding calls and closes the connection. Idempotent.
func (m *RemoteMiner) Close() error { return m.c.Close() }
