package farmer

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"sync"
	"time"

	"farmer/internal/rpc"
)

// RemoteMiner is a Miner served by one or more farmerd processes reached
// over the wire protocol (internal/rpc): every call is a pipelined request
// on one connection, so concurrent callers share the link without
// head-of-line blocking on each other's round trips. Mined degrees cross
// the wire as exact float64 bit patterns — a remote miner fingerprints
// identically to the local miner it serves.
//
// # Failover
//
// Dialed with several addresses — a primary and its replication followers
// (farmerd -replicate-to / -follow) — the client survives server loss: when
// a call fails with rpc.ErrDisconnected it redials the SAME address first
// (riding out a transient connection fault, which used to wedge the old
// single-connection client permanently), then the rest of the list. When a
// write is refused with rpc.ErrNotPrimary — the server is an un-promoted
// follower — the client asks it, then each other address, to promote: a
// primary answers promotion as a no-op, an orphaned follower promotes and
// takes the writes, and a follower whose primary link is still live refuses
// (the split-brain guard), leaving the connection serving reads. Only when
// the whole list is exhausted does the call fail.
//
// Mutations are never silently re-sent across a connection loss: a Feed or
// FeedBatch interrupted by rpc.ErrDisconnected is IN DOUBT (the dying
// primary may have mined and replicated it without acking), so re-sending
// it could double-mine those records on the survivor. The call fails with
// the typed error while the client recovers the connection underneath;
// the caller resumes exactly by reading Stats().Fed — the survivor's record
// count, exact because a server acks nothing it has not mined — and
// re-sending from that record. A write refused with ErrNotPrimary was
// definitely not applied, so that one IS retried internally after the
// promotion sweep. Reads always retry.
type RemoteMiner struct {
	addrs       []string
	opts        rpc.DialOptions // tenant binding, token, TLS — re-applied on every redial
	ackN        int             // WithAckWindow: in-flight feed frames (<= 1 = synchronous)
	ackAdaptive bool            // WithAckWindow(0): self-tuning window, 1..adaptive max

	mu     sync.Mutex
	c      *rpc.Client // current connection, nil after a drop
	cur    int         // index into addrs of the current connection
	closed bool

	// The windowed-feed state (WithAckWindow): one ack window per
	// connection, recreated whenever the connection changes so a stale
	// window can never resolve acks against a replaced client.
	win  *rpc.AckWindow
	winC *rpc.Client // the connection win was created on
}

var _ Miner = (*RemoteMiner)(nil)

// DialOption configures Dial.
type DialOption func(*dialConfig) error

type dialConfig struct {
	failover    []string
	opts        rpc.DialOptions
	ackWindow   int
	ackAdaptive bool
}

// WithTenant binds the client to one tenant: every frame it sends carries
// the tenant id, so the whole connection's traffic routes to that tenant's
// miner on a multi-tenant farmerd. The binding survives reconnect and
// failover — each redial re-binds before the first request. Empty (the
// default) addresses the server's default tenant.
func WithTenant(name string) DialOption {
	return func(dc *dialConfig) error {
		if err := rpc.ValidTenant(name); err != nil {
			return err
		}
		dc.opts.Tenant = name
		return nil
	}
}

// WithToken presents a bearer token in the connection hello — required
// against a farmerd running with -auth. Like the tenant binding, the token
// is re-presented on every reconnect and failover dial.
func WithToken(token string) DialOption {
	return func(dc *dialConfig) error {
		dc.opts.Token = token
		return nil
	}
}

// WithFailover appends addresses to the failover list: they are tried in
// order whenever the current connection dies (see RemoteMiner's failover
// contract).
func WithFailover(addrs ...string) DialOption {
	return func(dc *dialConfig) error {
		dc.failover = append(dc.failover, addrs...)
		return nil
	}
}

// WithDialTLS dials every address over TLS with the given configuration —
// the client half of farmerd -tls-cert/-tls-key.
func WithDialTLS(cfg *tls.Config) DialOption {
	return func(dc *dialConfig) error {
		dc.opts.TLS = cfg
		return nil
	}
}

// WithAckWindow(n), for n >= 2, puts the client's Feed and FeedBatch into
// windowed-ack mode: up to n frames stay in flight on the pipelined
// connection and their acks are resolved asynchronously, so a streaming
// feeder pays pipeline throughput instead of one round trip per acked call
// (the replication stream's ack-window machinery, applied client-side).
// n <= 1 keeps the default synchronous acked path.
//
// The acked-feed contract is preserved at a coarser barrier: a nil Feed
// means the record was handed to the window, and Flush is the barrier that
// makes every handed-over record mean what a synchronous ack means (on a
// replicated deployment: mined AND held by every live follower). On any
// failure the window poisons — the first failed ack is sticky, later Feeds
// fail fast without sending, and nothing is silently re-sent. The caller
// recovers exactly as from a synchronous in-doubt write: Flush (or the
// failed Feed) surfaces the first error, Stats().Fed on the recovered
// server is the exact resume point, and the stream is re-sent from there.
// Call Flush before Close to observe the final acks.
//
// WithAckWindow(0) selects the ADAPTIVE window: it starts at one frame in
// flight and grows toward an internal cap while reap round trips stay near
// the smoothed baseline, halving when one spikes past it — the right
// choice when the link's bandwidth-delay product is unknown.
func WithAckWindow(n int) DialOption {
	return func(dc *dialConfig) error {
		if n < 0 {
			return fmt.Errorf("farmer: WithAckWindow(%d): negative window", n)
		}
		if n == 0 {
			dc.ackAdaptive = true
		}
		dc.ackWindow = n
		return nil
	}
}

// Dial connects to a farmerd at addr (or, when it is unreachable, the
// first reachable WithFailover address) and returns the remote miner. ctx
// bounds the connection attempts only; per-call deadlines come from the
// contexts passed to the Miner methods. A client dialed WithTenant or
// WithToken performs the connection hello, which authenticates, binds the
// tenant, and verifies the protocol version — against a pre-tenant farmerd
// it fails with an error matching ErrBadVersion.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*RemoteMiner, error) {
	if addr == "" {
		return nil, errors.New("farmer: Dial needs an address")
	}
	dc := dialConfig{failover: []string{addr}}
	for _, opt := range opts {
		if err := opt(&dc); err != nil {
			return nil, err
		}
	}
	m := &RemoteMiner{addrs: dc.failover, opts: dc.opts, ackN: dc.ackWindow, ackAdaptive: dc.ackAdaptive}
	var firstErr error
	for i := range m.addrs {
		c, err := rpc.DialWith(ctx, m.addrs[i], m.opts)
		if err == nil {
			m.c, m.cur = c, i
			return m, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// failoverable reports whether an error means "this connection or server is
// done for, another server might do better": the transport died underneath
// us, an un-promoted follower refused a write, or a deposed leader refused
// it as stale-epoch (the lease moved; the new leader is elsewhere).
func failoverable(err error) bool {
	return errors.Is(err, rpc.ErrDisconnected) || errors.Is(err, rpc.ErrNotPrimary) ||
		errors.Is(err, rpc.ErrStaleEpoch)
}

// refusedUnapplied reports a write refusal that provably happened BEFORE
// any mining — an un-promoted follower, or a stale lease epoch (checked
// ahead of the mine, and re-checked under the stream lock) — so the write
// is safe to retry against another server even though it is a mutation.
func refusedUnapplied(err error) bool {
	return errors.Is(err, rpc.ErrNotPrimary) || errors.Is(err, rpc.ErrStaleEpoch)
}

// conn returns the current connection, establishing one if the last died:
// the dead address is retried first (transient-fault reconnect), then the
// rest of the list in order — pure connectivity, no role demands, so a
// reconnected client can keep reading from a follower. Callers that raced:
// the first through the mutex reconnects, the rest reuse its client.
func (m *RemoteMiner) conn(ctx context.Context) (*rpc.Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.connLocked(ctx)
}

func (m *RemoteMiner) connLocked(ctx context.Context) (*rpc.Client, error) {
	if m.closed {
		return nil, rpc.ErrClientClosed
	}
	if m.c != nil {
		return m.c, nil
	}
	var lastErr error
	for i := 0; i < len(m.addrs); i++ {
		idx := (m.cur + i) % len(m.addrs)
		c, err := rpc.DialWith(ctx, m.addrs[idx], m.opts)
		if err != nil {
			lastErr = err
			continue
		}
		m.c, m.cur = c, idx
		return c, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no address reachable", rpc.ErrDisconnected)
	}
	return nil, lastErr
}

// seekWritable finds a server that takes writes after one refused: the
// current connection is asked to promote (it succeeds exactly when its
// primary is gone — otherwise the split-brain guard refuses), then each
// other address — including the current one when its connection is down —
// is dialed and asked the same. On success the writable connection becomes
// current; on failure the current (read-capable) connection is kept.
//
// It never reports success without a successful Promote. An earlier
// version did: with the current connection down it skipped the current
// address entirely and started the sweep at the next one, so a
// single-address client got a nil "success" with nobody promoted — and do
// retried the write against a server that had never accepted promotion.
// When the cluster runs leases (farmerd -lease-ttl), the sweep is
// preceded by a lease pass: each address is asked its LeaseStatus and the
// live self-leader with the highest epoch wins outright — which is what
// keeps the sweep away from a reachable-but-lease-expired old primary
// whose in-order position would otherwise be tried first. Lease-less
// servers answer with the zero term and simply do not bid.
func (m *RemoteMiner) seekWritable(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return rpc.ErrClientClosed
	}
	if err := m.seekLeaseHolder(ctx); err == nil {
		return nil
	}
	var lastErr error
	start := 0
	if m.c != nil {
		if lastErr = m.c.Promote(ctx); lastErr == nil {
			return nil
		}
		start = 1 // the current address already refused on the live connection
	}
	for i := start; i < len(m.addrs); i++ {
		idx := (m.cur + i) % len(m.addrs)
		c, err := rpc.DialWith(ctx, m.addrs[idx], m.opts)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.Promote(ctx); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		if m.c != nil {
			m.c.Close()
		}
		m.c, m.cur = c, idx
		return nil
	}
	if lastErr == nil {
		// Unreachable while Dial demands an address, but the invariant is
		// the point: no nil without a Promote.
		lastErr = fmt.Errorf("%w: no server accepted promotion", rpc.ErrNotPrimary)
	}
	return lastErr
}

// seekLeaseHolder is seekWritable's lease pass, run under m.mu: probe every
// address's LeaseStatus and make the live self-leader with the highest
// epoch the current connection. Probe failures — unreachable servers,
// pre-lease builds answering CodeUnsupported — just withhold that bid; an
// error return means "no holder found, fall back to the promotion sweep".
func (m *RemoteMiner) seekLeaseHolder(ctx context.Context) error {
	var (
		best      *rpc.Client
		bestIdx   int
		bestEpoch uint64
	)
	for i := range m.addrs {
		idx := (m.cur + i) % len(m.addrs)
		c := m.c
		if idx != m.cur || c == nil {
			var err error
			if c, err = rpc.DialWith(ctx, m.addrs[idx], m.opts); err != nil {
				continue
			}
		}
		info, err := c.LeaseStatus(ctx)
		if err != nil || !info.Self || info.Epoch <= bestEpoch {
			if c != m.c {
				c.Close()
			}
			continue
		}
		if best != nil && best != m.c {
			best.Close()
		}
		best, bestIdx, bestEpoch = c, idx, info.Epoch
	}
	if best == nil {
		return fmt.Errorf("%w: no live lease holder among the configured addresses", rpc.ErrNotPrimary)
	}
	// Keep the sweep's invariant — never success without a Promote. On the
	// lease holder it is an idempotent no-op; a refusal (the lease moved
	// again between the probe and now) falls back to the sweep.
	if err := best.Promote(ctx); err != nil {
		if best != m.c {
			best.Close()
		}
		return err
	}
	if m.c != nil && m.c != best {
		m.c.Close()
	}
	m.c, m.cur = best, bestIdx
	return nil
}

// drop discards a connection observed failing (if it is still current).
func (m *RemoteMiner) drop(c *rpc.Client) {
	m.mu.Lock()
	if m.c == c {
		m.c = nil
	}
	m.mu.Unlock()
	c.Close()
}

// ackWindow returns the current connection's ack window, connecting first
// if the last connection died. The window is recreated whenever the
// connection changed underneath it.
func (m *RemoteMiner) ackWindow(ctx context.Context) (*rpc.AckWindow, *rpc.Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, err := m.connLocked(ctx)
	if err != nil {
		return nil, nil, err
	}
	if m.win == nil || m.winC != c {
		if m.ackAdaptive {
			m.win = c.NewAdaptiveAckWindow(m.ackN)
		} else {
			m.win = c.NewAckWindow(m.ackN)
		}
		m.winC = c
	}
	return m.win, c, nil
}

// windowed runs one windowed-feed operation and, on failure, settles the
// window: the remaining in-flight acks are drained, the poisoned window is
// discarded, a dead connection is dropped (the next call reconnects), and
// — because ErrNotPrimary means the refused frames were definitely NOT
// applied — a promotion sweep runs before the error surfaces, so the
// caller's resume-from-Stats().Fed replay lands on a writable server. The
// error itself always surfaces: frames acked before the failure may have
// been applied, so the stream is in doubt and nothing is re-sent here.
func (m *RemoteMiner) windowed(ctx context.Context, fn func(w *rpc.AckWindow) error) error {
	w, c, err := m.ackWindow(ctx)
	if err != nil {
		return err
	}
	if err := fn(w); err == nil {
		return nil
	}
	return m.settleWindow(ctx, w, c)
}

// settleWindow drains a failed window and runs the recovery described on
// windowed. It returns the window's first failure.
func (m *RemoteMiner) settleWindow(ctx context.Context, w *rpc.AckWindow, c *rpc.Client) error {
	err := w.Flush(ctx)
	m.forgetWindow(w)
	if err == nil {
		// The operation failed but the drain saw only clean acks — a ctx
		// expiry inside the operation, typically. The stream is still in
		// doubt (the expired wait abandoned its ack), so report it.
		if err = ctx.Err(); err == nil {
			err = rpc.ErrDisconnected
		}
		return err
	}
	m.recoverAfterWindow(ctx, c, err)
	return err
}

// forgetWindow discards a poisoned window (if still current); the next
// windowed call builds a fresh one on whatever connection is current then.
func (m *RemoteMiner) forgetWindow(w *rpc.AckWindow) {
	m.mu.Lock()
	if m.win == w {
		m.win, m.winC = nil, nil
	}
	m.mu.Unlock()
}

// recoverAfterWindow repositions the client after a windowed failure: a
// dead connection is dropped (the next call reconnects), and ErrNotPrimary
// triggers a best-effort promotion sweep — the refused frames were
// definitely not applied, and a successful sweep means the caller's
// resume-from-Stats().Fed replay lands on a writable server. The original
// error still surfaces either way.
func (m *RemoteMiner) recoverAfterWindow(ctx context.Context, c *rpc.Client, err error) {
	if errors.Is(err, rpc.ErrDisconnected) {
		m.drop(c)
	}
	if refusedUnapplied(err) {
		_ = m.seekWritable(ctx)
	}
}

// Flush is the windowed-ack barrier (WithAckWindow): it blocks until every
// in-flight feed frame is acked and returns the window's first failure,
// after which the caller resumes from Stats().Fed. On a miner without a
// window — or with nothing in flight — it returns nil immediately. Call it
// before Close to observe the final acks, and at every point where "fed"
// must mean "acked" (a checkpoint cut, a journal truncation).
func (m *RemoteMiner) Flush(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return rpc.ErrClientClosed
	}
	w, c := m.win, m.winC
	m.mu.Unlock()
	if w == nil {
		return nil
	}
	err := w.Flush(ctx)
	if err == nil {
		return nil
	}
	m.forgetWindow(w)
	m.recoverAfterWindow(ctx, c, err)
	return err
}

// do runs one call with reconnect-and-failover: at most one attempt per
// configured address after the initial failure, so a dead cluster fails
// fast instead of retrying forever. retryDisconnected says whether the call
// may be re-sent after a connection loss: true for reads and idempotent
// calls, false for mutations, whose delivery is in doubt once the
// connection died mid-call (the connection is still recovered for the
// NEXT call; only the in-doubt send is not repeated).
func (m *RemoteMiner) do(ctx context.Context, retryDisconnected bool, fn func(c *rpc.Client) error) error {
	var lastErr error
	for attempt := 0; attempt <= len(m.addrs); attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := m.conn(ctx)
		if err != nil {
			// conn already swept every address; nothing left to try.
			return err
		}
		err = fn(c)
		if err == nil || !failoverable(err) {
			return err
		}
		lastErr = err
		if refusedUnapplied(err) {
			// The connection is healthy — the server just refuses writes
			// (un-promoted follower, or deposed leader), which also means it
			// did NOT apply this call: safe to retry even for mutations.
			// Find a writable server; if none exists (primary alive
			// elsewhere, or single-address client), surface the refusal and
			// keep the connection for reads.
			if werr := m.seekWritable(ctx); werr != nil {
				return err
			}
			continue
		}
		m.drop(c)
		if !retryDisconnected {
			// In doubt: reconnect happens on the caller's next call; this
			// one reports the loss so the caller can resume from
			// Stats().Fed instead of risking a double-mine.
			return err
		}
	}
	return lastErr
}

// Ping round-trips an empty frame and reports the wall-clock latency — the
// liveness probe behind `farmerctl ping`.
func (m *RemoteMiner) Ping(ctx context.Context) (time.Duration, error) {
	var rtt time.Duration
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		rtt, err = c.Ping(ctx)
		return err
	})
	return rtt, err
}

// Feed implements Miner: one record, one acked round trip. On a replicated
// deployment the ack additionally means every live follower holds the
// record (see Serve), so an acked Feed survives the primary.
//
// Dialed WithAckWindow(n >= 2), Feed instead hands the record to the ack
// window — up to n frames stay in flight and a nil return means "accepted
// into the window"; Flush is the barrier that makes it mean "acked".
func (m *RemoteMiner) Feed(ctx context.Context, r *Record) error {
	if m.ackN > 1 || m.ackAdaptive {
		return m.windowed(ctx, func(w *rpc.AckWindow) error { return w.Feed(ctx, r) })
	}
	return m.do(ctx, false, func(c *rpc.Client) error { return c.Feed(ctx, r) })
}

// FeedBatch implements Miner: the whole batch travels as one frame (split
// only above the frame bound) and the server mines it with all shards in
// parallel before acking. Dialed WithAckWindow(n >= 2), the batch's frames
// ride the ack window like Feed's (see Flush).
func (m *RemoteMiner) FeedBatch(ctx context.Context, records []Record) error {
	if m.ackN > 1 || m.ackAdaptive {
		return m.windowed(ctx, func(w *rpc.AckWindow) error { return w.FeedBatch(ctx, records) })
	}
	return m.do(ctx, false, func(c *rpc.Client) error { return c.FeedBatch(ctx, records) })
}

// Predict implements Miner.
func (m *RemoteMiner) Predict(ctx context.Context, f FileID, k int) ([]FileID, error) {
	var out []FileID
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		out, err = c.Predict(ctx, f, k)
		return err
	})
	return out, err
}

// Stats implements Miner. After a failover, Stats().Fed on the promoted
// server is the exact-once resume point for callers replaying a journal.
func (m *RemoteMiner) Stats(ctx context.Context) (ModelStats, error) {
	var st ModelStats
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		st, err = c.Stats(ctx)
		return err
	})
	return st, err
}

// Save implements Miner: the server checkpoints into its own store.
func (m *RemoteMiner) Save(ctx context.Context) error {
	return m.do(ctx, true, func(c *rpc.Client) error { return c.Save(ctx) })
}

// Load implements Miner: the server restores from its own store.
func (m *RemoteMiner) Load(ctx context.Context) error {
	return m.do(ctx, true, func(c *rpc.Client) error { return c.Load(ctx) })
}

// CorrelatorList fetches f's full Correlator List with bit-exact degrees —
// the read the cross-process fingerprint tests use.
func (m *RemoteMiner) CorrelatorList(ctx context.Context, f FileID) ([]Correlator, error) {
	var out []Correlator
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		out, err = c.CorrelatorList(ctx, f)
		return err
	})
	return out, err
}

// BackupGroups asks the server to rebuild its replica groups over
// [0, fileCount) at the given correlation threshold and cut a group-atomic
// backup of every group (paper §4.3). On a replicating primary the cut is
// streamed to every follower at the same record boundary, so the returned
// fingerprint must match each follower's ReplicaGroups read.
func (m *RemoteMiner) BackupGroups(ctx context.Context, fileCount int, minDegree float64) (ReplicaGroupsInfo, error) {
	return m.groups(ctx, rpc.GroupsReq{FileCount: fileCount, MinDegree: minDegree})
}

// ReplicaGroups reads the server's current replica-group state without
// rebuilding or cutting — works against followers, which refuse the
// mutating BackupGroups.
func (m *RemoteMiner) ReplicaGroups(ctx context.Context) (ReplicaGroupsInfo, error) {
	return m.groups(ctx, rpc.GroupsReq{Read: true})
}

func (m *RemoteMiner) groups(ctx context.Context, req rpc.GroupsReq) (ReplicaGroupsInfo, error) {
	var info ReplicaGroupsInfo
	err := m.do(ctx, true, func(c *rpc.Client) error {
		gi, err := c.Groups(ctx, req)
		if err != nil {
			return err
		}
		info = ReplicaGroupsInfo{Fingerprint: gi.Fingerprint, Groups: gi.Groups, Versions: gi.Versions}
		return nil
	})
	return info, err
}

// LeaseStatus reports the CURRENT server's view of the cluster lease: the
// term (epoch + leader id), its TTL, and whether the answering server
// holds it. Against a farmerd without -lease-ttl it reports the zero term.
// Unlike writes, this deliberately does not failover past a reachable
// server — the point is to ask one server what it believes.
func (m *RemoteMiner) LeaseStatus(ctx context.Context) (LeaseInfo, error) {
	var info LeaseInfo
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		info, err = c.LeaseStatus(ctx)
		return err
	})
	return info, err
}

// Handoff asks the current server — which must hold the lease — to ship
// its state to the farmerd at target over the catch-up machinery and
// transfer the lease to it, epoch+1: `farmerctl rebalance` on the wire.
// When it returns nil the target leads and the source refuses writes
// typed. Never re-sent across a connection loss — a half-run handoff is in
// doubt, and re-running against a source that already handed off fails
// with ErrStaleEpoch; probe LeaseStatus on the target to resolve it.
func (m *RemoteMiner) Handoff(ctx context.Context, target string) error {
	c, err := m.conn(ctx)
	if err != nil {
		return err
	}
	if err := c.Handoff(ctx, target); err != nil {
		if errors.Is(err, rpc.ErrDisconnected) {
			m.drop(c)
		}
		return err
	}
	return nil
}

// WireStats fetches the server's per-request-type wire latency table
// (count and summed nanoseconds per MsgType) — the read behind the
// `farmerctl top` latency columns.
func (m *RemoteMiner) WireStats(ctx context.Context) ([]WireStat, error) {
	var out []WireStat
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		out, err = c.WireStats(ctx)
		return err
	})
	return out, err
}

// TenantStatus is one live tenant on a farmerd: its id (empty = the
// default tenant) and a stats snapshot of its model.
type TenantStatus struct {
	Name  string
	Stats ModelStats
}

// Tenants lists the tenants live on the server — the read behind
// `farmerctl tenants`. Against a server with auth enabled, the listing is
// filtered to the tenants this client's token is granted.
func (m *RemoteMiner) Tenants(ctx context.Context) ([]TenantStatus, error) {
	var out []TenantStatus
	err := m.do(ctx, true, func(c *rpc.Client) error {
		infos, err := c.Tenants(ctx)
		if err != nil {
			return err
		}
		out = make([]TenantStatus, len(infos))
		for i, ti := range infos {
			out[i] = TenantStatus{Name: ti.Name, Stats: ti.Stats}
		}
		return nil
	})
	return out, err
}

// Obs fetches one observability row per tenant live on the server —
// footprint, tap and checkpoint health, replication lag, prediction
// accuracy, and each tenant's topK strongest correlated groups — the read
// behind `farmerctl top` and the extended `farmerctl tenants` columns.
// Against a server with auth enabled, the rows are filtered to the tenants
// this client's token is granted.
func (m *RemoteMiner) Obs(ctx context.Context, topK int) ([]TenantObs, error) {
	var out []TenantObs
	err := m.do(ctx, true, func(c *rpc.Client) error {
		var err error
		out, err = c.Obs(ctx, topK)
		return err
	})
	return out, err
}

// Close drains outstanding calls and closes the connection. Idempotent.
func (m *RemoteMiner) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	c := m.c
	m.c = nil
	m.win, m.winC = nil, nil
	m.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Close()
}
