package farmer_test

import (
	"sync"
	"testing"

	"farmer"
)

func TestPublicAPIQuickstart(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(5000))
	if err != nil {
		t.Fatal(err)
	}
	model := farmer.New(farmer.ConfigFor(tr))
	for i := range tr.Records {
		model.Feed(&tr.Records[i])
	}
	if model.Fed() != 5000 {
		t.Fatalf("fed %d", model.Fed())
	}
	// Some file must have prefetch candidates.
	found := false
	for f := 0; f < tr.FileCount && !found; f++ {
		if len(model.Predict(farmer.FileID(f), 4)) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no predictions from a correlated workload")
	}
}

func TestPublicAPIMasks(t *testing.T) {
	m := farmer.MaskOf(farmer.AttrUser, farmer.AttrProcess)
	if !m.Has(farmer.AttrUser) || m.Has(farmer.AttrPath) {
		t.Fatal("mask composition broken")
	}
	cfg := farmer.DefaultConfig()
	cfg.Mask = m
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigForSchema(t *testing.T) {
	hp, _ := farmer.Generate(farmer.HP(100))
	ins, _ := farmer.Generate(farmer.INS(100))
	if !farmer.ConfigFor(hp).Mask.Has(farmer.AttrPath) {
		t.Fatal("HP config should use path attribute")
	}
	if !farmer.ConfigFor(ins).Mask.Has(farmer.AttrFileID) {
		t.Fatal("INS config should use file-id attribute")
	}
}

func TestCorrelatorListExposed(t *testing.T) {
	tr, _ := farmer.Generate(farmer.HP(5000))
	model := farmer.New(farmer.ConfigFor(tr))
	for i := range tr.Records {
		model.Feed(&tr.Records[i])
	}
	var list []farmer.Correlator
	for f := 0; f < tr.FileCount; f++ {
		if l := model.CorrelatorList(farmer.FileID(f)); len(l) > 0 {
			list = l
			break
		}
	}
	if list == nil {
		t.Fatal("no correlator lists")
	}
	for _, c := range list {
		if c.Degree <= 0.4 { // default max_strength
			t.Fatalf("entry below threshold leaked: %+v", c)
		}
	}
}

// TestPublicAPISharded exercises the concurrent miner through the public
// surface: parallel batch ingestion must match the single-lock model's
// predictions exactly.
func TestPublicAPISharded(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(5000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	single := farmer.New(cfg)
	for i := range tr.Records {
		single.Feed(&tr.Records[i])
	}
	cfg.Shards = 4
	sharded := farmer.NewSharded(cfg)
	sharded.FeedTraceParallel(tr)
	if sharded.Fed() != single.Fed() {
		t.Fatalf("fed %d vs %d", sharded.Fed(), single.Fed())
	}
	for f := 0; f < tr.FileCount; f++ {
		id := farmer.FileID(f)
		want, got := single.Predict(id, 4), sharded.Predict(id, 4)
		if len(want) != len(got) {
			t.Fatalf("file %d: %d vs %d predictions", f, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("file %d: prediction %d is %d, want %d", f, i, got[i], want[i])
			}
		}
	}
}

func TestPublicAPIAsyncPrefetcher(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(4000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	cfg.Shards = 4
	model := farmer.NewSharded(cfg)

	var mu sync.Mutex
	var got []farmer.PrefetchCandidate
	sink := farmer.PrefetchSinkFunc(func(c farmer.PrefetchCandidate) {
		mu.Lock()
		got = append(got, c)
		mu.Unlock()
	})
	p := farmer.StartPrefetcher(model, sink, farmer.PrefetchConfig{K: 4, QueueCap: 1 << 16, TapBuffer: len(tr.Records)})
	model.FeedTraceParallel(tr)
	p.Stop()

	st := p.Stats()
	if st.Events != uint64(len(tr.Records)) {
		t.Fatalf("pipeline consumed %d events, want %d", st.Events, len(tr.Records))
	}
	if st.Submitted == 0 || uint64(len(got)) != st.Submitted {
		t.Fatalf("sink saw %d candidates, stats say %d", len(got), st.Submitted)
	}
	if st.Predicted != st.Submitted+st.QueueDropped {
		t.Fatalf("accounting: predicted %d != submitted %d + dropped %d",
			st.Predicted, st.Submitted, st.QueueDropped)
	}
	// The async pipeline must not have perturbed mining.
	ref := farmer.New(farmer.ConfigFor(tr))
	for i := range tr.Records {
		ref.Feed(&tr.Records[i])
	}
	for f := 0; f < tr.FileCount; f++ {
		id := farmer.FileID(f)
		want, have := ref.Predict(id, 4), model.Predict(id, 4)
		if len(want) != len(have) {
			t.Fatalf("file %d: %d vs %d predictions", f, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("file %d: prediction %d is %d, want %d", f, i, have[i], want[i])
			}
		}
	}
}

// TestPublicAPIClusterMiner drives the partitioned deployment story through
// the public surface alone: an N-server collective miner under a deployment
// partitioner, merged persistence, and a resize (different server count AND
// different partitioner) with identical predictions.
func TestPublicAPIClusterMiner(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(5000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	cluster := farmer.NewClusterMiner(cfg, 4, farmer.HashPartitioner)
	if cluster.Shards() != 4 {
		t.Fatalf("servers = %d, want 4", cluster.Shards())
	}
	cluster.FeedTraceParallel(tr)

	// Each server's partition holds exactly the files the deployment routes
	// to it.
	for f := 0; f < tr.FileCount; f++ {
		id := farmer.FileID(f)
		own := farmer.HashPartitioner(id, 4)
		if want, got := cluster.Predict(id, 4), cluster.Shard(own).Predict(id, 4); len(want) != len(got) {
			t.Fatalf("file %d: owner shard disagrees with ensemble", f)
		}
	}

	st, err := farmer.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := cluster.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	resized := farmer.NewClusterMiner(cfg, 7, farmer.GroupPartitioner)
	if err := resized.LoadMerged(st); err != nil {
		t.Fatal(err)
	}
	if resized.Fed() != cluster.Fed() {
		t.Fatalf("fed %d vs %d after resize", resized.Fed(), cluster.Fed())
	}
	for f := 0; f < tr.FileCount; f++ {
		id := farmer.FileID(f)
		want, got := cluster.Predict(id, 4), resized.Predict(id, 4)
		if len(want) != len(got) {
			t.Fatalf("file %d: %d vs %d predictions after resize", f, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("file %d: prediction %d is %d, want %d", f, i, got[i], want[i])
			}
		}
	}
}
