package farmer

import "context"

// Test seams for the farmer package's external (farmer_test) tests.

// SetSaveToStore replaces the checkpoint body behind LocalMiner.Save and
// returns a restore function — how the drain tests stand in a store write
// that hangs.
func SetSaveToStore(fn func(sm *ShardedModel, st *Store) error) (restore func()) {
	old := saveToStore
	saveToStore = fn
	return func() { saveToStore = old }
}

// SeekWritable exposes the failover promotion sweep for the regression
// tests around its never-nil-without-a-Promote invariant.
func (m *RemoteMiner) SeekWritable(ctx context.Context) error { return m.seekWritable(ctx) }

// DropConn discards the current connection without closing the miner — the
// tests' stand-in for a transport that died underneath the client.
func (m *RemoteMiner) DropConn() {
	m.mu.Lock()
	c := m.c
	m.c, m.win, m.winC = nil, nil, nil
	m.mu.Unlock()
	if c != nil {
		c.Close()
	}
}
