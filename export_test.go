package farmer

// Test seams for the farmer package's external (farmer_test) tests.

// SetSaveToStore replaces the checkpoint body behind LocalMiner.Save and
// returns a restore function — how the drain tests stand in a store write
// that hangs.
func SetSaveToStore(fn func(sm *ShardedModel, st *Store) error) (restore func()) {
	old := saveToStore
	saveToStore = fn
	return func() { saveToStore = old }
}
