package farmer

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/core"
	"farmer/internal/lease"
	"farmer/internal/obs"
	"farmer/internal/partition"
	"farmer/internal/rpc"
	"farmer/internal/trace"
)

// ServeConfig tunes Serve.
type ServeConfig struct {
	// Checkpoint saves the miner into its store every interval (0 = never).
	// The final drain always checkpoints once more when a store is
	// configured.
	Checkpoint time.Duration
	// DrainTimeout bounds the graceful shutdown (default 10s): connections
	// get that long to finish in-flight requests before being cut, and the
	// final checkpoint gets the same bound (a hung store write cannot wedge
	// the drain).
	DrainTimeout time.Duration
	// CheckpointTimeout bounds routine checkpoints (ticker and
	// client-requested saves). They must be bounded — they run on the
	// serve loop, so an unbounded hang there would also make the eventual
	// drain unreachable — but the default is deliberately generous,
	// max(DrainTimeout, Checkpoint, 1m): a save that is merely slow keeps
	// succeeding; only a genuinely wedged write is abandoned.
	CheckpointTimeout time.Duration

	// ReplicateTo makes the served miner a replication PRIMARY: at startup
	// it dials each address (a farmerd started with Follower/-follow),
	// bootstraps it with a catch-up checkpoint, and thereafter streams every
	// acked record batch — and every group-backup cut — to it before acking
	// the client. Followers must be reachable at startup; one that fails
	// mid-serve is dropped (logged via Logf) and the primary keeps serving.
	ReplicateTo []string
	// ReplicaAckTimeout bounds how long the primary waits for one
	// follower's ack (default 30s). A follower that is connected but
	// wedged — stopped process, stuck disk — would otherwise block every
	// client write forever, since only a transport error detaches it;
	// when the bound expires the follower is dropped like a dead one.
	ReplicaAckTimeout time.Duration
	// Follower makes the served miner a replication FOLLOWER: it accepts a
	// primary's catch-up and replication stream, serves reads, and refuses
	// writes (rpc.ErrNotPrimary on the wire) until promoted. Promotion —
	// requested by a failing-over client or farmerctl — is granted only
	// while no primary link is attached, so a live primary can never be
	// contradicted (the split-brain guard). Mutually exclusive with
	// ReplicateTo.
	Follower bool
	// ReplicaToken is the bearer token presented when dialing followers —
	// required when the followers run with AuthTokens (it must be granted
	// every tenant there, i.e. mapped to "*").
	ReplicaToken string
	// ReplicaTLS, when non-nil, dials followers over TLS.
	ReplicaTLS *tls.Config
	// LeaseTTL enables the epoch-versioned ownership layer (internal/lease):
	// the daemon holds writes behind a lease renewed every TTL/4 — through
	// the replication stream when followers are configured, so a renewal
	// needs a follower quorum and a partitioned leader LAPSES within one TTL
	// and refuses writes typed (ErrStaleEpoch) instead of diverging. An
	// un-promoted follower whose view of the lease lapsed elects itself
	// (votes from LeasePeers, then the next epoch) with no farmerctl promote
	// involved. 0 disables leases and keeps the historical availability-wins
	// behavior.
	LeaseTTL time.Duration
	// LeaseID names this daemon in lease terms and election votes. It
	// defaults to the listener address, which is what makes the client's
	// failover sweep able to match a LeaseStatus answer to a dial address.
	LeaseID string
	// LeasePeers are the other farmerds asked to vote when this follower
	// elects itself (typically the sibling followers of one primary). An
	// election needs (1+len(LeasePeers))/2 granted votes; with no peers a
	// follower elects alone — the two-node deployment.
	LeasePeers []string

	// CatchupTail sets how many recent records the primary retains for
	// delta catch-up: a follower that restarts holding its own on-disk
	// checkpoint inside that tail is caught up by replaying just the
	// records it missed (MsgCatchupDelta) instead of shipping a full
	// snapshot — O(missed records), not O(model). 0 means the default
	// (65536); negative disables delta catch-up. Only meaningful with
	// ReplicateTo.
	CatchupTail int
	// Logf, if set, receives serve-time notices (a dropped follower, a
	// promotion). Defaults to discarding them.
	Logf func(format string, args ...any)

	// Obs, when non-nil, receives the server's live metrics: the miner's
	// ingest/tap/checkpoint/prediction series (AttachMetrics), the wire
	// layer's frame/byte/per-tenant-feed counters, and — on a replicating
	// primary — per-follower replication lag. Render it with
	// WritePrometheus/WriteJSON; farmerd's -metrics-addr endpoint is exactly
	// that.
	Obs *MetricsRegistry

	// TLS, when non-nil, serves the protocol over TLS on the listener —
	// the server half of farmerd -tls-cert/-tls-key.
	TLS *tls.Config
	// AuthTokens maps static bearer tokens to the tenant ids each may
	// address ("*" grants every tenant). When non-nil, every connection
	// must open with a hello carrying a known token before any frame
	// dispatches; unknown tokens and out-of-grant tenants are refused with
	// ErrUnauthorized. nil disables auth.
	AuthTokens map[string][]string
	// Tenants, when non-nil, turns the daemon multi-tenant: frames carrying
	// a tenant id resolve through a Registry that lazily opens one miner
	// (plus store, checkpoint schedule and replication stream) per tenant.
	// nil keeps the historical single-tenant behavior — named tenants are
	// refused, the provided miner serves the default tenant.
	Tenants *TenantsConfig
}

// serveBackend adapts a LocalMiner to the wire protocol's backend surface
// and carries the replication role state: primary (replicating or not),
// which routes every mutation through the rpc.Replicator so followers see
// the exact acked stream, or follower, which refuses writes until promoted
// and applies the primary's stream instead. ApplyEvents hands a remote
// dispatcher's event batches to the ensemble (rpc.NetOwner's server side);
// it is unavailable on replicated deployments, whose single source of
// mining truth is the record stream.
type serveBackend struct {
	m          *LocalMiner
	drain      time.Duration
	saveBudget time.Duration // routine-checkpoint bound (>= drain)
	logf       func(format string, args ...any)

	// repl is non-nil on a replicating primary. It is guarded by replGate
	// because a live handoff (MsgHandoff) installs a replicator on a
	// previously standalone source mid-serve: the install takes the write
	// side, waiting out every in-flight direct-path feed, so the new
	// stream's starting position is exactly the miner's record count.
	replGate sync.RWMutex
	repl     *rpc.Replicator

	// lease, when non-nil, is the daemon-wide lease machinery shared by
	// every tenant backend (the daemon leads or follows as a whole).
	lease *leaseState

	// tenant and budget carry the registry's admission control: feeds are
	// refused with ErrTenantBudget once the tenant's model footprint
	// clears budget.MaxMemoryBytes (default tenant: zero budget, unlimited).
	tenant     string
	budget     TenantBudget
	memPending atomic.Int64 // records since the last footprint check
	overBudget atomic.Bool

	fmu      sync.Mutex
	follower bool
	promoted bool
	srcConn  uint64 // connection id of the attached primary link (0 = none)
}

var _ rpc.ReplicaBackend = (*serveBackend)(nil)
var _ rpc.LeaseBackend = (*serveBackend)(nil)
var _ rpc.HandoffBackend = (*serveBackend)(nil)

// leaseState is the daemon-wide half of the lease layer: one Holder (term
// algebra), the peer set consulted during elections, and the renewal
// quorum. serveBackend.leaseLoop drives it; every tenant backend shares it,
// so "may this daemon serve writes" has exactly one answer.
type leaseState struct {
	holder   *lease.Holder
	peers    []string
	dialOpts rpc.DialOptions // election vote probes dial peers with these
	// renewQuorum is how many follower acks a renewal broadcast needs —
	// half the CONFIGURED follower count, rounded up, not the attached
	// count: a primary partitioned from its followers must lapse, not
	// quietly renew against an empty room.
	renewQuorum int
	replicaAck  time.Duration
	logf        func(format string, args ...any)

	handoffs  *obs.Counter   // farmer_handoffs_total
	handoffNS *obs.Histogram // farmer_handoff_duration_ns
}

// replicator snapshots the replication handle under the gate (a live
// handoff may install one on a standalone source mid-serve).
func (b *serveBackend) replicator() *rpc.Replicator {
	b.replGate.RLock()
	defer b.replGate.RUnlock()
	return b.repl
}

// writable reports whether this server currently accepts mutations:
// primaries always, followers only once promoted — and, when leases are
// enabled, only while this daemon's lease is live and un-deposed. The
// lease refusal travels typed (ErrStaleEpoch): the client treats it like
// ErrNotPrimary and seeks the current leader.
func (b *serveBackend) writable() error {
	b.fmu.Lock()
	follower, promoted := b.follower, b.promoted
	b.fmu.Unlock()
	if follower && !promoted {
		return fmt.Errorf("%w: this farmerd is a replication follower; dial its primary or promote it", rpc.ErrNotPrimary)
	}
	if ls := b.lease; ls != nil && !ls.holder.Leading() {
		term, _ := ls.holder.Current()
		if term.Leader != "" && term.Leader != ls.holder.Self() {
			return fmt.Errorf("%w: lease epoch %d is held by %q", rpc.ErrStaleEpoch, term.Epoch, term.Leader)
		}
		return fmt.Errorf("%w: this farmerd's lease lapsed at epoch %d (renewal quorum lost?)", rpc.ErrStaleEpoch, term.Epoch)
	}
	return nil
}

// leaseStillWritable is the mine-closure re-check: it runs under the
// replicator's stream lock, where a concurrent lease transfer's commit is
// serialized, so a feed admitted before the transfer committed aborts here
// — before mining, before shipping — and the refusal is safe to retry
// against the new leader (the record was definitely not applied anywhere).
func (b *serveBackend) leaseStillWritable() error {
	if ls := b.lease; ls != nil && !ls.holder.Leading() {
		term, _ := ls.holder.Current()
		return fmt.Errorf("%w: lease moved to %q (epoch %d) while this feed was in flight",
			rpc.ErrStaleEpoch, term.Leader, term.Epoch)
	}
	return nil
}

// budgetCheckStride is how many ingested records a tenant goes between
// memory-budget rechecks: Stats walks every tracked file, so a per-feed
// check would make ingestion quadratic. A variable only so tests can force
// a check on small feeds.
var budgetCheckStride int64 = 4096

// admit is the feed-path half of tenant admission control: it refuses the
// batch with an error wrapping ErrTenantBudget (CodeTenantBudget on the
// wire) once the tenant's model footprint exceeds its budget. The check is
// throttled to every budgetCheckStride records — the cap is enforced at
// stride granularity, trading exactness for a non-quadratic hot path — and
// an over-budget tenant keeps rechecking, so a Load that shrinks the model
// readmits it.
func (b *serveBackend) admit(n int) error {
	if b.budget.MaxMemoryBytes <= 0 {
		return nil
	}
	if b.memPending.Add(int64(n)) < budgetCheckStride && !b.overBudget.Load() {
		return nil
	}
	b.memPending.Store(0)
	mem := b.m.sm.Stats().MemoryBytes
	if mem > b.budget.MaxMemoryBytes {
		b.overBudget.Store(true)
		return fmt.Errorf("%w: tenant %q model holds %d bytes, budget caps it at %d",
			rpc.ErrTenantBudget, b.tenant, mem, b.budget.MaxMemoryBytes)
	}
	b.overBudget.Store(false)
	return nil
}

func (b *serveBackend) Feed(r *trace.Record) error {
	if err := b.writable(); err != nil {
		return err
	}
	if err := b.admit(1); err != nil {
		return err
	}
	b.replGate.RLock()
	defer b.replGate.RUnlock()
	if b.repl == nil {
		b.m.sm.Feed(r)
		return nil
	}
	return b.repl.Ingest(context.Background(), []trace.Record{*r}, func() error {
		if err := b.leaseStillWritable(); err != nil {
			return err
		}
		b.m.sm.Feed(r)
		return nil
	})
}

func (b *serveBackend) FeedBatch(recs []trace.Record) error {
	if err := b.writable(); err != nil {
		return err
	}
	if err := b.admit(len(recs)); err != nil {
		return err
	}
	b.replGate.RLock()
	defer b.replGate.RUnlock()
	if b.repl == nil {
		b.m.sm.FeedBatch(recs)
		return nil
	}
	return b.repl.Ingest(context.Background(), recs, func() error {
		if err := b.leaseStillWritable(); err != nil {
			return err
		}
		b.m.sm.FeedBatch(recs)
		return nil
	})
}

// Reads go through the LocalMiner, not the raw ensemble, so a miner opened
// WithReadStripes serves them from its striped list snapshot instead of
// contending with mining on the shard locks.
func (b *serveBackend) Predict(f FileID, k int) []FileID {
	out, _ := b.m.Predict(context.Background(), f, k)
	return out
}
func (b *serveBackend) CorrelatorList(f FileID) []Correlator { return b.m.CorrelatorList(f) }
func (b *serveBackend) Stats() core.Stats                    { return b.m.sm.Stats() }

// TenantObs implements rpc.ObsBackend: the miner's observability row plus
// the replication half only this layer knows — follower count and the
// worst per-follower lag (primary position minus acked position).
func (b *serveBackend) TenantObs(topK int) rpc.TenantObs {
	row := b.m.obsRow(topK)
	if ls := b.lease; ls != nil {
		term, _ := ls.holder.Current()
		row.LeaseEpoch = term.Epoch
	}
	if repl := b.replicator(); repl != nil {
		lags := repl.Lags()
		row.Followers = uint64(len(lags))
		for _, l := range lags {
			if l.Lag > row.ReplLagMax {
				row.ReplLagMax = l.Lag
			}
		}
	}
	return row
}

func (b *serveBackend) ApplyEvents(evs []partition.Event) error {
	if err := b.writable(); err != nil {
		return err
	}
	if b.replicator() != nil {
		// Event batches bypass the record stream the followers mirror;
		// accepting them would silently fork primary and follower state.
		return errors.New("farmer: a replicating primary does not accept external event streams (feed records instead)")
	}
	b.m.sm.ApplyExternal(evs)
	return nil
}

// saveCtx bounds a routine checkpoint. The budget is generous (see
// ServeConfig.DrainTimeout) — slow is fine, wedged is not: these saves run
// on the serve loop, and an unbounded hang there would also make the
// eventual drain unreachable.
func (b *serveBackend) saveCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), b.saveBudget)
}

func (b *serveBackend) Save() error {
	ctx, cancel := b.saveCtx()
	defer cancel()
	return b.m.Save(ctx)
}

func (b *serveBackend) Load() error {
	if err := b.writable(); err != nil {
		return err
	}
	if b.replicator() != nil {
		return errors.New("farmer: cannot load a checkpoint into a replicating primary (restart it with -load instead)")
	}
	ctx, cancel := b.saveCtx()
	defer cancel()
	return b.m.Load(ctx)
}

// ------------------------------------------------------- replication surface

func (b *serveBackend) Promote() error {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	if !b.follower || b.promoted {
		// Already writable in role terms — but under leases "writable" also
		// demands a live lease: a deposed or lapsed leader must not answer a
		// failover sweep's Promote with success, or the sweep would steer
		// writes right back at it.
		if ls := b.lease; ls != nil && !ls.holder.Leading() {
			term, _ := ls.holder.Current()
			return fmt.Errorf("%w: refusing promotion, lease epoch %d is held by %q",
				rpc.ErrStaleEpoch, term.Epoch, term.Leader)
		}
		return nil // already writable: promotion is an idempotent no-op
	}
	if b.srcConn != 0 {
		return fmt.Errorf("%w: refusing promotion, the primary's replication link is live", rpc.ErrNotPrimary)
	}
	if ls := b.lease; ls != nil {
		// Lease-mediated promotion: granted only by winning the next epoch,
		// which Acquire refuses while another leader's lease is still live —
		// a reachable-but-lease-expired primary can no longer be contradicted
		// early, and a deposed one can never be "promoted back" silently.
		if ls.holder.Leading() {
			b.promoted = true // the daemon already leads; this tenant joins it
			return nil
		}
		term, err := ls.holder.Acquire()
		if err != nil {
			return fmt.Errorf("farmer: refusing promotion: %w", err)
		}
		b.promoted = true
		b.logf("promoted: leading at epoch %d, accepting writes from now on", term.Epoch)
		return nil
	}
	b.promoted = true
	b.logf("promoted: accepting writes from now on")
	return nil
}

// ------------------------------------------------------------ lease surface

// LeaseStatus implements rpc.LeaseBackend: the daemon's current term, TTL
// and whether it is this daemon's own live lease — the answer the client's
// failover sweep ranks candidates by. A daemon without leases enabled
// reports the zero term (epoch 0).
func (b *serveBackend) LeaseStatus() rpc.LeaseInfo {
	ls := b.lease
	if ls == nil {
		return rpc.LeaseInfo{}
	}
	term, _ := ls.holder.Current()
	return rpc.LeaseInfo{
		Epoch:  term.Epoch,
		Leader: term.Leader,
		TTLMS:  uint64(ls.holder.TTL() / time.Millisecond),
		Self:   ls.holder.Leading(),
	}
}

// LeaseVote decides a candidate's election request. Beyond the Holder's
// term algebra (the epoch must be new, the sitting lease lapsed), a
// follower whose primary replication link is still live withholds its
// vote: a primary it can hear from is not dead, whatever the candidate's
// clock says.
func (b *serveBackend) LeaseVote(epoch uint64, candidate string) error {
	ls := b.lease
	if ls == nil {
		return errors.New("farmer: leases are disabled on this farmerd (start it with -lease-ttl)")
	}
	b.fmu.Lock()
	src := b.srcConn
	b.fmu.Unlock()
	if src != 0 {
		return fmt.Errorf("farmer: vote for %q withheld, the primary's replication link is live", candidate)
	}
	if err := ls.holder.Vote(epoch, candidate); err != nil {
		return err
	}
	ls.logf("lease: voted for %q at epoch %d", candidate, epoch)
	return nil
}

// LeaseGrant folds a leader's announced term in. Renewal grants arrive on
// the replication stream and just refresh this follower's view (refusing
// one as stale is how a deposed leader learns it lost). A TRANSFER grant —
// the last frame of a live handoff — must arrive on the pinned replication
// link, FIFO behind every record the source acked, and makes this follower
// the leader of the new epoch on the spot: adopt the term, self-promote,
// serve writes.
func (b *serveBackend) LeaseGrant(conn uint64, info rpc.LeaseInfo) error {
	ls := b.lease
	if ls == nil {
		if info.Transfer {
			return errors.New("farmer: lease transfer to a farmerd without leases enabled (start the target with -lease-ttl)")
		}
		return nil // renewal broadcast to a lease-less follower: harmless
	}
	if !info.Transfer {
		return ls.holder.Observe(lease.Term{Epoch: info.Epoch, Leader: info.Leader})
	}
	b.fmu.Lock()
	if !b.follower {
		b.fmu.Unlock()
		return errors.New("farmer: lease transfer to a non-follower")
	}
	if b.srcConn == 0 || b.srcConn != conn {
		b.fmu.Unlock()
		return errors.New("farmer: lease transfer outside the pinned replication link")
	}
	b.fmu.Unlock()
	// Adopt the transferred epoch with SELF as leader (the source's name for
	// this node is its dial address, which may not match LeaseID textually).
	// The epoch is strictly above everything observed on this link, so the
	// Observe cannot fail.
	if err := ls.holder.Observe(lease.Term{Epoch: info.Epoch, Leader: ls.holder.Self()}); err != nil {
		return err
	}
	b.fmu.Lock()
	b.promoted = true
	b.fmu.Unlock()
	b.logf("lease transferred: leading at epoch %d, accepting writes", info.Epoch)
	return nil
}

// Handoff implements rpc.HandoffBackend (`farmerctl rebalance`): ship this
// daemon's state to the target over the existing catch-up machinery, then
// hand it the lease. The transfer grant is started on the target's
// replication connection UNDER the stream lock — FIFO behind every record
// this source ever acked — and the source is marked stale in the same
// critical section, so a feed racing the handoff either lands before the
// grant (the target replays it) or aborts typed (ErrStaleEpoch, never
// mined anywhere): acked-record loss is zero by construction.
func (b *serveBackend) Handoff(target string) error {
	ls := b.lease
	if ls == nil {
		return errors.New("farmer: live handoff needs leases (start this farmerd with -lease-ttl)")
	}
	if b.tenant != "" {
		return errors.New("farmer: rebalance moves the whole daemon; address it without -tenant")
	}
	if err := b.writable(); err != nil {
		return err
	}
	start := time.Now()
	rp, err := b.handoffReplicator(ls)
	if err != nil {
		return err
	}
	attached := false
	for _, addr := range rp.Followers() {
		if addr == target {
			attached = true
		} else {
			return fmt.Errorf("farmer: refusing handoff to %s while also replicating to %s (the stream cannot split leaders)", target, addr)
		}
	}
	if !attached {
		if err := rp.Attach(context.Background(), target, b.m.catchupCut); err != nil {
			return err
		}
		b.logf("handoff: target %s caught up and attached", target)
	}
	term, _ := ls.holder.Current()
	next := lease.Term{Epoch: term.Epoch + 1, Leader: target}
	info := rpc.LeaseInfo{Epoch: next.Epoch, Leader: target, TTLMS: uint64(ls.holder.TTL() / time.Millisecond)}
	err = rp.TransferLease(context.Background(), target, info, func() {
		// Commit, under the stream lock: observing the next epoch with the
		// target as leader deposes this source. next.Epoch is strictly above
		// everything this holder observed, so the Observe cannot fail.
		_ = ls.holder.Observe(next)
	})
	if err != nil {
		return err
	}
	ls.handoffs.Inc()
	ls.handoffNS.Observe(uint64(time.Since(start)))
	b.logf("handoff: lease transferred to %s at epoch %d in %v; this farmerd now refuses writes",
		target, next.Epoch, time.Since(start).Round(time.Millisecond))
	return nil
}

// handoffReplicator returns the backend's replicator, installing one on a
// standalone source: the install takes the write side of replGate, waiting
// out every in-flight direct-path feed, so the stream position is exactly
// the miner's record count when the target's catch-up cut is taken.
func (b *serveBackend) handoffReplicator(ls *leaseState) (*rpc.Replicator, error) {
	if rp := b.replicator(); rp != nil {
		return rp, nil
	}
	b.replGate.Lock()
	defer b.replGate.Unlock()
	if b.repl == nil {
		rp := rpc.NewReplicator(b.m.sm.Fed(), ls.replicaAck, func(addr string, err error) {
			b.logf("handoff target %s dropped from replication: %v", addr, err)
		})
		rp.SetDialOptions(ls.dialOpts)
		b.repl = rp
	}
	return b.repl, nil
}

// ------------------------------------------------------- lease renewal loop

// leaseLoop drives the daemon's lease at TTL/4: a leader renews its term
// (through the replication stream when followers are configured), an
// un-promoted follower whose view of the lease lapsed elects itself. Runs
// on the default tenant's backend until ctx is done.
func (b *serveBackend) leaseLoop(ctx context.Context, ls *leaseState) {
	period := max(ls.holder.TTL()/4, 10*time.Millisecond)
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		b.fmu.Lock()
		follower, promoted, src := b.follower, b.promoted, b.srcConn
		b.fmu.Unlock()
		if !follower || promoted {
			b.renewTick(ctx, ls)
		} else {
			b.electTick(ctx, ls, src)
		}
	}
}

// renewTick extends the leader's lease. With configured followers the
// renewal is a MsgLeaseGrant broadcast on the replication stream needing a
// quorum of acks, so a partitioned leader LAPSES within one TTL and starts
// refusing writes typed — the split-brain rule: once leases are on, safety
// beats availability. A refusal as stale means a higher epoch exists
// somewhere; the leader deposes itself immediately.
func (b *serveBackend) renewTick(ctx context.Context, ls *leaseState) {
	term, _ := ls.holder.Current()
	if term.Leader != ls.holder.Self() || ls.holder.Deposed() {
		return // deposed, or handed off: this daemon no longer renews
	}
	rp := b.replicator()
	if rp == nil || ls.renewQuorum == 0 {
		_ = ls.holder.Renew()
		return
	}
	info := rpc.LeaseInfo{Epoch: term.Epoch, Leader: term.Leader, TTLMS: uint64(ls.holder.TTL() / time.Millisecond)}
	rctx, cancel := context.WithTimeout(ctx, ls.holder.TTL())
	acked, stale := rp.RenewLease(rctx, info)
	cancel()
	switch {
	case stale:
		ls.holder.Depose()
		ls.logf("lease: renewal refused as stale, a higher epoch exists; deposed, refusing writes")
	case acked >= ls.renewQuorum:
		_ = ls.holder.Renew()
	default:
		ls.logf("lease: renewal acked by %d/%d followers, quorum not met; lease will lapse", acked, ls.renewQuorum)
	}
}

// electTick is follower self-election: once a leader was observed (epoch >
// 0), its lease lapsed, and its replication link is gone, the follower
// asks each configured peer to vote it the next epoch; with a majority of
// peer votes (none needed without peers — the two-node deployment) it
// acquires the term and promotes itself. No farmerctl promote involved.
func (b *serveBackend) electTick(ctx context.Context, ls *leaseState, src uint64) {
	term, remaining := ls.holder.Current()
	if src != 0 || term.Epoch == 0 || remaining > 0 {
		return
	}
	next := term.Epoch + 1
	votes := 0
	for _, peer := range ls.peers {
		if b.voteFrom(ctx, ls, peer, next) {
			votes++
		}
	}
	if need := (1 + len(ls.peers)) / 2; votes < need {
		ls.logf("lease: election for epoch %d got %d/%d peer votes; retrying", next, votes, need)
		return
	}
	won, err := ls.holder.Acquire()
	if err != nil {
		ls.logf("lease: election for epoch %d lost: %v", next, err)
		return
	}
	b.fmu.Lock()
	b.promoted = true
	b.fmu.Unlock()
	ls.logf("lease: elected at epoch %d after the leader's lease lapsed; accepting writes", won.Epoch)
}

// voteFrom asks one peer for its vote. Any failure — unreachable peer, a
// stale refusal, a peer that heard from the sitting leader more recently —
// is a withheld vote, never fatal: the next tick retries.
func (b *serveBackend) voteFrom(ctx context.Context, ls *leaseState, peer string, epoch uint64) bool {
	vctx, cancel := context.WithTimeout(ctx, ls.holder.TTL())
	defer cancel()
	c, err := rpc.DialWith(vctx, peer, ls.dialOpts)
	if err != nil {
		return false
	}
	defer c.Close()
	return c.LeaseVote(vctx, epoch, ls.holder.Self()) == nil
}

func (b *serveBackend) Catchup(conn uint64, cut rpc.CatchupCut) error {
	b.fmu.Lock()
	if !b.follower {
		b.fmu.Unlock()
		return errors.New("farmer: this farmerd is not a follower (start it with -follow to accept a primary)")
	}
	if b.promoted {
		b.fmu.Unlock()
		return errors.New("farmer: promoted follower refuses a new primary (restart it to re-join as a follower)")
	}
	if b.srcConn != 0 && b.srcConn != conn {
		b.fmu.Unlock()
		return errors.New("farmer: already following a primary on another connection")
	}
	// Pin the source before installing: this connection is serial, so no
	// replicate frame can race the install, and any other connection's
	// catch-up is refused above.
	b.srcConn = conn
	b.fmu.Unlock()
	if err := b.m.applyCatchup(cut); err != nil {
		b.fmu.Lock()
		b.srcConn = 0
		b.fmu.Unlock()
		return err
	}
	b.logf("caught up from primary at position %d (%d files)", cut.Pos, cut.FileCount)
	return nil
}

// CatchupDelta applies one chunk of a primary's delta catch-up: replay the
// missed records through the miner and, on the final chunk, verify the
// primary's fingerprint against the replayed state. The source-connection
// pinning mirrors Catchup; on any error the pin is released so the
// primary's fallback — a full cut, usually on a fresh connection — is not
// refused as a second primary.
func (b *serveBackend) CatchupDelta(conn uint64, d rpc.CatchupDelta) error {
	b.fmu.Lock()
	if !b.follower {
		b.fmu.Unlock()
		return errors.New("farmer: this farmerd is not a follower (start it with -follow to accept a primary)")
	}
	if b.promoted {
		b.fmu.Unlock()
		return errors.New("farmer: promoted follower refuses a new primary (restart it to re-join as a follower)")
	}
	if b.srcConn != 0 && b.srcConn != conn {
		b.fmu.Unlock()
		return errors.New("farmer: already following a primary on another connection")
	}
	b.srcConn = conn
	b.fmu.Unlock()
	if err := b.m.applyCatchupDelta(d); err != nil {
		b.fmu.Lock()
		if b.srcConn == conn {
			b.srcConn = 0
		}
		b.fmu.Unlock()
		return err
	}
	if d.Final {
		b.logf("caught up from primary by delta replay to position %d (%d files)",
			d.FromPos+uint64(len(d.Records)), d.FileCount)
	}
	return nil
}

// replicated guards one replication-stream frame: right source connection,
// right stream position.
func (b *serveBackend) replicated(conn uint64, pos uint64) error {
	b.fmu.Lock()
	src := b.srcConn
	b.fmu.Unlock()
	if src == 0 || src != conn {
		return errors.New("farmer: replication frame from a connection that has not caught this follower up")
	}
	if fed := b.m.sm.Fed(); fed != pos {
		return fmt.Errorf("farmer: replication stream position %d does not match follower position %d (gap or reorder)", pos, fed)
	}
	return nil
}

func (b *serveBackend) Replicate(conn uint64, pos uint64, recs []trace.Record) error {
	if err := b.replicated(conn, pos); err != nil {
		return err
	}
	b.m.sm.FeedBatch(recs)
	return nil
}

func (b *serveBackend) ReplicateGroups(conn uint64, pos uint64, req rpc.GroupsReq) error {
	if err := b.replicated(conn, pos); err != nil {
		return err
	}
	_, err := b.m.BackupGroups(req.FileCount, req.MinDegree)
	return err
}

func (b *serveBackend) Groups(req rpc.GroupsReq) (rpc.GroupsInfo, error) {
	if req.Read {
		return groupsInfo(b.m.ReplicaGroups()), nil
	}
	if err := b.writable(); err != nil {
		return rpc.GroupsInfo{}, err
	}
	run := func() error {
		_, err := b.m.BackupGroups(req.FileCount, req.MinDegree)
		return err
	}
	var err error
	if repl := b.replicator(); repl != nil {
		// The cut rides the replication stream at the current position, so
		// every follower executes it at the same record boundary and the
		// group fingerprints stay comparable.
		err = repl.Groups(context.Background(), req, run)
	} else {
		err = run()
	}
	if err != nil {
		return rpc.GroupsInfo{}, err
	}
	return groupsInfo(b.m.ReplicaGroups()), nil
}

func groupsInfo(gi ReplicaGroupsInfo) rpc.GroupsInfo {
	return rpc.GroupsInfo{Fingerprint: gi.Fingerprint, Groups: gi.Groups, Versions: gi.Versions}
}

// defaultCatchupTail is how many recent records a primary retains for delta
// catch-up when ServeConfig.CatchupTail is zero.
const defaultCatchupTail = 65536

// catchupTail resolves the ServeConfig.CatchupTail convention: 0 = default,
// negative = disabled.
func catchupTail(cfg int) int {
	if cfg < 0 {
		return 0
	}
	if cfg == 0 {
		return defaultCatchupTail
	}
	return cfg
}

func (b *serveBackend) ConnClosed(conn uint64) {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	if b.srcConn == conn {
		b.srcConn = 0
		b.logf("primary replication link lost; this follower is now promotable")
	}
}

// Serve puts a local miner on the wire: it serves the FARMER rpc protocol
// on lis until ctx is cancelled, then drains gracefully — in-flight
// requests finish, responses flush, and (when a miner has a store) a
// final checkpoint is written. With cfg.ReplicateTo it serves as a
// replication primary, with cfg.Follower as a promotable follower, with
// cfg.Tenants as a multi-tenant daemon whose Registry opens one miner per
// tenant on demand (m serves the default tenant either way). It blocks for
// the duration and returns the first serve, checkpoint,
// replication-bootstrap, or drain error. This is the serving loop behind
// cmd/farmerd and `farmerctl serve`.
func Serve(ctx context.Context, lis net.Listener, m *LocalMiner, cfg ServeConfig) error {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Follower && len(cfg.ReplicateTo) > 0 {
		return errors.New("farmer: a follower cannot replicate onward (chained replication is not supported)")
	}
	if cfg.LeaseTTL <= 0 && len(cfg.LeasePeers) > 0 {
		return errors.New("farmer: LeasePeers without LeaseTTL (enable leases with -lease-ttl)")
	}
	if cfg.ReplicaAckTimeout <= 0 {
		cfg.ReplicaAckTimeout = 30 * time.Second
	}
	saveBudget := cfg.CheckpointTimeout
	if saveBudget <= 0 {
		saveBudget = max(cfg.DrainTimeout, cfg.Checkpoint, time.Minute)
	}
	backend := &serveBackend{m: m, drain: cfg.DrainTimeout, saveBudget: saveBudget, logf: cfg.Logf, follower: cfg.Follower}
	var leaseSt *leaseState
	if cfg.LeaseTTL > 0 {
		id := cfg.LeaseID
		if id == "" {
			id = lis.Addr().String()
		}
		leaseSt = &leaseState{
			holder:      lease.NewHolder(id, cfg.LeaseTTL, nil),
			peers:       cfg.LeasePeers,
			dialOpts:    rpc.DialOptions{Token: cfg.ReplicaToken, TLS: cfg.ReplicaTLS},
			renewQuorum: (1 + len(cfg.ReplicateTo)) / 2,
			replicaAck:  cfg.ReplicaAckTimeout,
			logf:        cfg.Logf,
		}
		backend.lease = leaseSt
		if !cfg.Follower {
			// A fresh holder has observed nothing, so this cannot fail.
			term, _ := leaseSt.holder.Acquire()
			cfg.Logf("lease: leading at epoch %d (id %s, ttl %v)", term.Epoch, id, cfg.LeaseTTL)
		}
	}
	if len(cfg.ReplicateTo) > 0 {
		backend.repl = rpc.NewReplicator(m.sm.Fed(), cfg.ReplicaAckTimeout, func(addr string, err error) {
			cfg.Logf("follower %s dropped from replication: %v", addr, err)
		})
		backend.repl.SetDialOptions(rpc.DialOptions{Token: cfg.ReplicaToken, TLS: cfg.ReplicaTLS})
		if tail := catchupTail(cfg.CatchupTail); tail > 0 {
			backend.repl.EnableDeltaCatchup(tail, m.catchupFingerprint)
		}
		defer backend.repl.Close()
		for _, addr := range cfg.ReplicateTo {
			if err := backend.repl.Attach(ctx, addr, m.catchupCut); err != nil {
				return err
			}
			cfg.Logf("follower %s caught up and attached", addr)
		}
		if leaseSt != nil && !cfg.Follower {
			// Announce the lease term to the just-attached followers now
			// rather than at the first renewal tick: a leader that dies
			// inside that first TTL/4 window would otherwise leave followers
			// that never observed any lease — and a follower that has seen
			// no epoch refuses to elect itself.
			backend.renewTick(ctx, leaseSt)
		}
	}
	if cfg.Obs != nil {
		m.AttachMetrics(cfg.Obs)
		if repl := backend.repl; repl != nil {
			cfg.Obs.GaugeEach("farmer_repl_lag_records", func(emit obs.EmitFunc) {
				for _, l := range repl.Lags() {
					emit([]obs.Label{obs.L("follower", l.Addr)}, float64(l.Lag))
				}
			})
			cfg.Obs.GaugeFunc("farmer_repl_followers", func() float64 { return float64(len(repl.Lags())) })
		}
		if leaseSt != nil {
			cfg.Obs.GaugeFunc("farmer_lease_epoch", func() float64 {
				term, _ := leaseSt.holder.Current()
				return float64(term.Epoch)
			})
			leaseSt.handoffs = cfg.Obs.Counter("farmer_handoffs_total")
			leaseSt.handoffNS = cfg.Obs.Histogram("farmer_handoff_duration_ns")
		}
	}
	reg := newRegistry(cfg, saveBudget)
	reg.leaseSt = leaseSt
	reg.registerDefault(m, backend)
	defer reg.closeReplicators()
	srv := rpc.NewResolverServer(reg, rpc.ServerOptions{AuthTokens: cfg.AuthTokens, Obs: cfg.Obs})
	if cfg.TLS != nil {
		lis = tls.NewListener(lis, cfg.TLS)
	}

	if leaseSt != nil {
		// Cancel on return, not just on ctx: the listener-failure path must
		// not leave the renewal loop running through the drain.
		lctx, stopLease := context.WithCancel(ctx)
		defer stopLease()
		go backend.leaseLoop(lctx, leaseSt)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	var tick <-chan time.Time
	if cfg.Checkpoint > 0 && (m.store != nil || (cfg.Tenants != nil && cfg.Tenants.Dir != "")) {
		ticker := time.NewTicker(cfg.Checkpoint)
		defer ticker.Stop()
		tick = ticker.C
	}
	var evict <-chan time.Time
	if cfg.Tenants != nil && cfg.Tenants.IdleAfter > 0 {
		period := max(cfg.Tenants.IdleAfter/4, 10*time.Millisecond)
		evicter := time.NewTicker(period)
		defer evicter.Stop()
		evict = evicter.C
	}

	// drain shuts the server down, writes every tenant's final checkpoint,
	// and folds any earlier checkpoint error in — shared by the ctx-cancel
	// path and the listener-failure path, so mined state is never lost to
	// either. The drain context bounds BOTH halves: a hung store write
	// counts against the same DrainTimeout as the connection drain.
	var ckptErr error
	drain := func(cause error) error {
		dctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(dctx)
		// Flush every replication stream before the final checkpoints so a
		// clean shutdown leaves every follower holding everything the
		// primary acked.
		reg.closeReplicators()
		if serr := reg.drainAll(dctx); serr != nil && err == nil {
			err = serr
		}
		if cause != nil {
			return cause
		}
		if err == nil {
			err = ckptErr
		}
		return err
	}
	for {
		select {
		case <-tick:
			err := reg.checkpointAll()
			if err != nil && ckptErr == nil {
				ckptErr = err
			}
		case <-evict:
			reg.evictIdle()
		case err := <-serveErr:
			// Listener failure without a shutdown: drain the open
			// connections and checkpoint anyway, then surface the cause.
			return drain(err)
		case <-ctx.Done():
			err := drain(nil)
			<-serveErr
			return err
		}
	}
}
