package farmer

import (
	"context"
	"net"
	"time"

	"farmer/internal/core"
	"farmer/internal/partition"
	"farmer/internal/rpc"
	"farmer/internal/trace"
)

// localBackend adapts a LocalMiner to the wire protocol's backend surface.
// ApplyEvents hands a remote dispatcher's event batches to the ensemble,
// which routes them onto the owning shards — the server side of a
// multi-process partitioned deployment (rpc.NetOwner is the client side).
type localBackend struct{ m *LocalMiner }

func (b localBackend) Feed(r *trace.Record) error           { b.m.sm.Feed(r); return nil }
func (b localBackend) FeedBatch(recs []trace.Record) error  { b.m.sm.FeedBatch(recs); return nil }
func (b localBackend) Predict(f FileID, k int) []FileID     { return b.m.sm.Predict(f, k) }
func (b localBackend) CorrelatorList(f FileID) []Correlator { return b.m.sm.CorrelatorList(f) }
func (b localBackend) Stats() core.Stats                    { return b.m.sm.Stats() }
func (b localBackend) ApplyEvents(evs []partition.Event)    { b.m.sm.ApplyExternal(evs) }
func (b localBackend) Save() error                          { return b.m.Save(context.Background()) }
func (b localBackend) Load() error                          { return b.m.Load(context.Background()) }

// ServeConfig tunes Serve.
type ServeConfig struct {
	// Checkpoint saves the miner into its store every interval (0 = never).
	// The final drain always checkpoints once more when a store is
	// configured.
	Checkpoint time.Duration
	// DrainTimeout bounds the graceful shutdown (default 10s): connections
	// get that long to finish in-flight requests before being cut.
	DrainTimeout time.Duration
}

// Serve puts a local miner on the wire: it serves the FARMER rpc protocol
// on lis until ctx is cancelled, then drains gracefully — in-flight
// requests finish, responses flush, and (when the miner has a store) a
// final checkpoint is written. It blocks for the duration and returns the
// first serve, checkpoint, or drain error. This is the serving loop behind
// cmd/farmerd and `farmerctl serve`.
func Serve(ctx context.Context, lis net.Listener, m *LocalMiner, cfg ServeConfig) error {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	srv := rpc.NewServer(localBackend{m})

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if cfg.Checkpoint > 0 && m.store != nil {
		ticker = time.NewTicker(cfg.Checkpoint)
		defer ticker.Stop()
		tick = ticker.C
	}

	// drain shuts the server down, writes the final checkpoint, and folds
	// any earlier checkpoint error in — shared by the ctx-cancel path and
	// the listener-failure path, so mined state is never lost to either.
	var ckptErr error
	drain := func(cause error) error {
		dctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(dctx)
		if m.store != nil {
			if serr := m.Save(context.Background()); serr != nil && err == nil {
				err = serr
			}
		}
		if cause != nil {
			return cause
		}
		if err == nil {
			err = ckptErr
		}
		return err
	}
	for {
		select {
		case <-tick:
			if err := m.Save(context.Background()); err != nil && ckptErr == nil {
				ckptErr = err
			}
		case err := <-serveErr:
			// Listener failure without a shutdown: drain the open
			// connections and checkpoint anyway, then surface the cause.
			return drain(err)
		case <-ctx.Done():
			err := drain(nil)
			<-serveErr
			return err
		}
	}
}
