package farmer

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/core"
	"farmer/internal/obs"
	"farmer/internal/partition"
	"farmer/internal/rpc"
	"farmer/internal/trace"
)

// ServeConfig tunes Serve.
type ServeConfig struct {
	// Checkpoint saves the miner into its store every interval (0 = never).
	// The final drain always checkpoints once more when a store is
	// configured.
	Checkpoint time.Duration
	// DrainTimeout bounds the graceful shutdown (default 10s): connections
	// get that long to finish in-flight requests before being cut, and the
	// final checkpoint gets the same bound (a hung store write cannot wedge
	// the drain).
	DrainTimeout time.Duration
	// CheckpointTimeout bounds routine checkpoints (ticker and
	// client-requested saves). They must be bounded — they run on the
	// serve loop, so an unbounded hang there would also make the eventual
	// drain unreachable — but the default is deliberately generous,
	// max(DrainTimeout, Checkpoint, 1m): a save that is merely slow keeps
	// succeeding; only a genuinely wedged write is abandoned.
	CheckpointTimeout time.Duration

	// ReplicateTo makes the served miner a replication PRIMARY: at startup
	// it dials each address (a farmerd started with Follower/-follow),
	// bootstraps it with a catch-up checkpoint, and thereafter streams every
	// acked record batch — and every group-backup cut — to it before acking
	// the client. Followers must be reachable at startup; one that fails
	// mid-serve is dropped (logged via Logf) and the primary keeps serving.
	ReplicateTo []string
	// ReplicaAckTimeout bounds how long the primary waits for one
	// follower's ack (default 30s). A follower that is connected but
	// wedged — stopped process, stuck disk — would otherwise block every
	// client write forever, since only a transport error detaches it;
	// when the bound expires the follower is dropped like a dead one.
	ReplicaAckTimeout time.Duration
	// Follower makes the served miner a replication FOLLOWER: it accepts a
	// primary's catch-up and replication stream, serves reads, and refuses
	// writes (rpc.ErrNotPrimary on the wire) until promoted. Promotion —
	// requested by a failing-over client or farmerctl — is granted only
	// while no primary link is attached, so a live primary can never be
	// contradicted (the split-brain guard). Mutually exclusive with
	// ReplicateTo.
	Follower bool
	// ReplicaToken is the bearer token presented when dialing followers —
	// required when the followers run with AuthTokens (it must be granted
	// every tenant there, i.e. mapped to "*").
	ReplicaToken string
	// ReplicaTLS, when non-nil, dials followers over TLS.
	ReplicaTLS *tls.Config
	// CatchupTail sets how many recent records the primary retains for
	// delta catch-up: a follower that restarts holding its own on-disk
	// checkpoint inside that tail is caught up by replaying just the
	// records it missed (MsgCatchupDelta) instead of shipping a full
	// snapshot — O(missed records), not O(model). 0 means the default
	// (65536); negative disables delta catch-up. Only meaningful with
	// ReplicateTo.
	CatchupTail int
	// Logf, if set, receives serve-time notices (a dropped follower, a
	// promotion). Defaults to discarding them.
	Logf func(format string, args ...any)

	// Obs, when non-nil, receives the server's live metrics: the miner's
	// ingest/tap/checkpoint/prediction series (AttachMetrics), the wire
	// layer's frame/byte/per-tenant-feed counters, and — on a replicating
	// primary — per-follower replication lag. Render it with
	// WritePrometheus/WriteJSON; farmerd's -metrics-addr endpoint is exactly
	// that.
	Obs *MetricsRegistry

	// TLS, when non-nil, serves the protocol over TLS on the listener —
	// the server half of farmerd -tls-cert/-tls-key.
	TLS *tls.Config
	// AuthTokens maps static bearer tokens to the tenant ids each may
	// address ("*" grants every tenant). When non-nil, every connection
	// must open with a hello carrying a known token before any frame
	// dispatches; unknown tokens and out-of-grant tenants are refused with
	// ErrUnauthorized. nil disables auth.
	AuthTokens map[string][]string
	// Tenants, when non-nil, turns the daemon multi-tenant: frames carrying
	// a tenant id resolve through a Registry that lazily opens one miner
	// (plus store, checkpoint schedule and replication stream) per tenant.
	// nil keeps the historical single-tenant behavior — named tenants are
	// refused, the provided miner serves the default tenant.
	Tenants *TenantsConfig
}

// serveBackend adapts a LocalMiner to the wire protocol's backend surface
// and carries the replication role state: primary (replicating or not),
// which routes every mutation through the rpc.Replicator so followers see
// the exact acked stream, or follower, which refuses writes until promoted
// and applies the primary's stream instead. ApplyEvents hands a remote
// dispatcher's event batches to the ensemble (rpc.NetOwner's server side);
// it is unavailable on replicated deployments, whose single source of
// mining truth is the record stream.
type serveBackend struct {
	m          *LocalMiner
	repl       *rpc.Replicator // non-nil on a replicating primary
	drain      time.Duration
	saveBudget time.Duration // routine-checkpoint bound (>= drain)
	logf       func(format string, args ...any)

	// tenant and budget carry the registry's admission control: feeds are
	// refused with ErrTenantBudget once the tenant's model footprint
	// clears budget.MaxMemoryBytes (default tenant: zero budget, unlimited).
	tenant     string
	budget     TenantBudget
	memPending atomic.Int64 // records since the last footprint check
	overBudget atomic.Bool

	fmu      sync.Mutex
	follower bool
	promoted bool
	srcConn  uint64 // connection id of the attached primary link (0 = none)
}

var _ rpc.ReplicaBackend = (*serveBackend)(nil)

// writable reports whether this server currently accepts mutations:
// primaries always, followers only once promoted.
func (b *serveBackend) writable() error {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	if b.follower && !b.promoted {
		return fmt.Errorf("%w: this farmerd is a replication follower; dial its primary or promote it", rpc.ErrNotPrimary)
	}
	return nil
}

// budgetCheckStride is how many ingested records a tenant goes between
// memory-budget rechecks: Stats walks every tracked file, so a per-feed
// check would make ingestion quadratic. A variable only so tests can force
// a check on small feeds.
var budgetCheckStride int64 = 4096

// admit is the feed-path half of tenant admission control: it refuses the
// batch with an error wrapping ErrTenantBudget (CodeTenantBudget on the
// wire) once the tenant's model footprint exceeds its budget. The check is
// throttled to every budgetCheckStride records — the cap is enforced at
// stride granularity, trading exactness for a non-quadratic hot path — and
// an over-budget tenant keeps rechecking, so a Load that shrinks the model
// readmits it.
func (b *serveBackend) admit(n int) error {
	if b.budget.MaxMemoryBytes <= 0 {
		return nil
	}
	if b.memPending.Add(int64(n)) < budgetCheckStride && !b.overBudget.Load() {
		return nil
	}
	b.memPending.Store(0)
	mem := b.m.sm.Stats().MemoryBytes
	if mem > b.budget.MaxMemoryBytes {
		b.overBudget.Store(true)
		return fmt.Errorf("%w: tenant %q model holds %d bytes, budget caps it at %d",
			rpc.ErrTenantBudget, b.tenant, mem, b.budget.MaxMemoryBytes)
	}
	b.overBudget.Store(false)
	return nil
}

func (b *serveBackend) Feed(r *trace.Record) error {
	if err := b.writable(); err != nil {
		return err
	}
	if err := b.admit(1); err != nil {
		return err
	}
	if b.repl == nil {
		b.m.sm.Feed(r)
		return nil
	}
	return b.repl.Ingest(context.Background(), []trace.Record{*r}, func() error {
		b.m.sm.Feed(r)
		return nil
	})
}

func (b *serveBackend) FeedBatch(recs []trace.Record) error {
	if err := b.writable(); err != nil {
		return err
	}
	if err := b.admit(len(recs)); err != nil {
		return err
	}
	if b.repl == nil {
		b.m.sm.FeedBatch(recs)
		return nil
	}
	return b.repl.Ingest(context.Background(), recs, func() error {
		b.m.sm.FeedBatch(recs)
		return nil
	})
}

// Reads go through the LocalMiner, not the raw ensemble, so a miner opened
// WithReadStripes serves them from its striped list snapshot instead of
// contending with mining on the shard locks.
func (b *serveBackend) Predict(f FileID, k int) []FileID {
	out, _ := b.m.Predict(context.Background(), f, k)
	return out
}
func (b *serveBackend) CorrelatorList(f FileID) []Correlator { return b.m.CorrelatorList(f) }
func (b *serveBackend) Stats() core.Stats                    { return b.m.sm.Stats() }

// TenantObs implements rpc.ObsBackend: the miner's observability row plus
// the replication half only this layer knows — follower count and the
// worst per-follower lag (primary position minus acked position).
func (b *serveBackend) TenantObs(topK int) rpc.TenantObs {
	row := b.m.obsRow(topK)
	if b.repl != nil {
		lags := b.repl.Lags()
		row.Followers = uint64(len(lags))
		for _, l := range lags {
			if l.Lag > row.ReplLagMax {
				row.ReplLagMax = l.Lag
			}
		}
	}
	return row
}

func (b *serveBackend) ApplyEvents(evs []partition.Event) error {
	if err := b.writable(); err != nil {
		return err
	}
	if b.repl != nil {
		// Event batches bypass the record stream the followers mirror;
		// accepting them would silently fork primary and follower state.
		return errors.New("farmer: a replicating primary does not accept external event streams (feed records instead)")
	}
	b.m.sm.ApplyExternal(evs)
	return nil
}

// saveCtx bounds a routine checkpoint. The budget is generous (see
// ServeConfig.DrainTimeout) — slow is fine, wedged is not: these saves run
// on the serve loop, and an unbounded hang there would also make the
// eventual drain unreachable.
func (b *serveBackend) saveCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), b.saveBudget)
}

func (b *serveBackend) Save() error {
	ctx, cancel := b.saveCtx()
	defer cancel()
	return b.m.Save(ctx)
}

func (b *serveBackend) Load() error {
	if err := b.writable(); err != nil {
		return err
	}
	if b.repl != nil {
		return errors.New("farmer: cannot load a checkpoint into a replicating primary (restart it with -load instead)")
	}
	ctx, cancel := b.saveCtx()
	defer cancel()
	return b.m.Load(ctx)
}

// ------------------------------------------------------- replication surface

func (b *serveBackend) Promote() error {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	if !b.follower || b.promoted {
		return nil // already writable: promotion is an idempotent no-op
	}
	if b.srcConn != 0 {
		return fmt.Errorf("%w: refusing promotion, the primary's replication link is live", rpc.ErrNotPrimary)
	}
	b.promoted = true
	b.logf("promoted: accepting writes from now on")
	return nil
}

func (b *serveBackend) Catchup(conn uint64, cut rpc.CatchupCut) error {
	b.fmu.Lock()
	if !b.follower {
		b.fmu.Unlock()
		return errors.New("farmer: this farmerd is not a follower (start it with -follow to accept a primary)")
	}
	if b.promoted {
		b.fmu.Unlock()
		return errors.New("farmer: promoted follower refuses a new primary (restart it to re-join as a follower)")
	}
	if b.srcConn != 0 && b.srcConn != conn {
		b.fmu.Unlock()
		return errors.New("farmer: already following a primary on another connection")
	}
	// Pin the source before installing: this connection is serial, so no
	// replicate frame can race the install, and any other connection's
	// catch-up is refused above.
	b.srcConn = conn
	b.fmu.Unlock()
	if err := b.m.applyCatchup(cut); err != nil {
		b.fmu.Lock()
		b.srcConn = 0
		b.fmu.Unlock()
		return err
	}
	b.logf("caught up from primary at position %d (%d files)", cut.Pos, cut.FileCount)
	return nil
}

// CatchupDelta applies one chunk of a primary's delta catch-up: replay the
// missed records through the miner and, on the final chunk, verify the
// primary's fingerprint against the replayed state. The source-connection
// pinning mirrors Catchup; on any error the pin is released so the
// primary's fallback — a full cut, usually on a fresh connection — is not
// refused as a second primary.
func (b *serveBackend) CatchupDelta(conn uint64, d rpc.CatchupDelta) error {
	b.fmu.Lock()
	if !b.follower {
		b.fmu.Unlock()
		return errors.New("farmer: this farmerd is not a follower (start it with -follow to accept a primary)")
	}
	if b.promoted {
		b.fmu.Unlock()
		return errors.New("farmer: promoted follower refuses a new primary (restart it to re-join as a follower)")
	}
	if b.srcConn != 0 && b.srcConn != conn {
		b.fmu.Unlock()
		return errors.New("farmer: already following a primary on another connection")
	}
	b.srcConn = conn
	b.fmu.Unlock()
	if err := b.m.applyCatchupDelta(d); err != nil {
		b.fmu.Lock()
		if b.srcConn == conn {
			b.srcConn = 0
		}
		b.fmu.Unlock()
		return err
	}
	if d.Final {
		b.logf("caught up from primary by delta replay to position %d (%d files)",
			d.FromPos+uint64(len(d.Records)), d.FileCount)
	}
	return nil
}

// replicated guards one replication-stream frame: right source connection,
// right stream position.
func (b *serveBackend) replicated(conn uint64, pos uint64) error {
	b.fmu.Lock()
	src := b.srcConn
	b.fmu.Unlock()
	if src == 0 || src != conn {
		return errors.New("farmer: replication frame from a connection that has not caught this follower up")
	}
	if fed := b.m.sm.Fed(); fed != pos {
		return fmt.Errorf("farmer: replication stream position %d does not match follower position %d (gap or reorder)", pos, fed)
	}
	return nil
}

func (b *serveBackend) Replicate(conn uint64, pos uint64, recs []trace.Record) error {
	if err := b.replicated(conn, pos); err != nil {
		return err
	}
	b.m.sm.FeedBatch(recs)
	return nil
}

func (b *serveBackend) ReplicateGroups(conn uint64, pos uint64, req rpc.GroupsReq) error {
	if err := b.replicated(conn, pos); err != nil {
		return err
	}
	_, err := b.m.BackupGroups(req.FileCount, req.MinDegree)
	return err
}

func (b *serveBackend) Groups(req rpc.GroupsReq) (rpc.GroupsInfo, error) {
	if req.Read {
		return groupsInfo(b.m.ReplicaGroups()), nil
	}
	if err := b.writable(); err != nil {
		return rpc.GroupsInfo{}, err
	}
	run := func() error {
		_, err := b.m.BackupGroups(req.FileCount, req.MinDegree)
		return err
	}
	var err error
	if b.repl != nil {
		// The cut rides the replication stream at the current position, so
		// every follower executes it at the same record boundary and the
		// group fingerprints stay comparable.
		err = b.repl.Groups(context.Background(), req, run)
	} else {
		err = run()
	}
	if err != nil {
		return rpc.GroupsInfo{}, err
	}
	return groupsInfo(b.m.ReplicaGroups()), nil
}

func groupsInfo(gi ReplicaGroupsInfo) rpc.GroupsInfo {
	return rpc.GroupsInfo{Fingerprint: gi.Fingerprint, Groups: gi.Groups, Versions: gi.Versions}
}

// defaultCatchupTail is how many recent records a primary retains for delta
// catch-up when ServeConfig.CatchupTail is zero.
const defaultCatchupTail = 65536

// catchupTail resolves the ServeConfig.CatchupTail convention: 0 = default,
// negative = disabled.
func catchupTail(cfg int) int {
	if cfg < 0 {
		return 0
	}
	if cfg == 0 {
		return defaultCatchupTail
	}
	return cfg
}

func (b *serveBackend) ConnClosed(conn uint64) {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	if b.srcConn == conn {
		b.srcConn = 0
		b.logf("primary replication link lost; this follower is now promotable")
	}
}

// Serve puts a local miner on the wire: it serves the FARMER rpc protocol
// on lis until ctx is cancelled, then drains gracefully — in-flight
// requests finish, responses flush, and (when a miner has a store) a
// final checkpoint is written. With cfg.ReplicateTo it serves as a
// replication primary, with cfg.Follower as a promotable follower, with
// cfg.Tenants as a multi-tenant daemon whose Registry opens one miner per
// tenant on demand (m serves the default tenant either way). It blocks for
// the duration and returns the first serve, checkpoint,
// replication-bootstrap, or drain error. This is the serving loop behind
// cmd/farmerd and `farmerctl serve`.
func Serve(ctx context.Context, lis net.Listener, m *LocalMiner, cfg ServeConfig) error {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Follower && len(cfg.ReplicateTo) > 0 {
		return errors.New("farmer: a follower cannot replicate onward (chained replication is not supported)")
	}
	saveBudget := cfg.CheckpointTimeout
	if saveBudget <= 0 {
		saveBudget = max(cfg.DrainTimeout, cfg.Checkpoint, time.Minute)
	}
	backend := &serveBackend{m: m, drain: cfg.DrainTimeout, saveBudget: saveBudget, logf: cfg.Logf, follower: cfg.Follower}
	if len(cfg.ReplicateTo) > 0 {
		if cfg.ReplicaAckTimeout <= 0 {
			cfg.ReplicaAckTimeout = 30 * time.Second
		}
		backend.repl = rpc.NewReplicator(m.sm.Fed(), cfg.ReplicaAckTimeout, func(addr string, err error) {
			cfg.Logf("follower %s dropped from replication: %v", addr, err)
		})
		backend.repl.SetDialOptions(rpc.DialOptions{Token: cfg.ReplicaToken, TLS: cfg.ReplicaTLS})
		if tail := catchupTail(cfg.CatchupTail); tail > 0 {
			backend.repl.EnableDeltaCatchup(tail, m.catchupFingerprint)
		}
		defer backend.repl.Close()
		for _, addr := range cfg.ReplicateTo {
			if err := backend.repl.Attach(ctx, addr, m.catchupCut); err != nil {
				return err
			}
			cfg.Logf("follower %s caught up and attached", addr)
		}
	}
	if cfg.Obs != nil {
		m.AttachMetrics(cfg.Obs)
		if repl := backend.repl; repl != nil {
			cfg.Obs.GaugeEach("farmer_repl_lag_records", func(emit obs.EmitFunc) {
				for _, l := range repl.Lags() {
					emit([]obs.Label{obs.L("follower", l.Addr)}, float64(l.Lag))
				}
			})
			cfg.Obs.GaugeFunc("farmer_repl_followers", func() float64 { return float64(len(repl.Lags())) })
		}
	}
	reg := newRegistry(cfg, saveBudget)
	reg.registerDefault(m, backend)
	defer reg.closeReplicators()
	srv := rpc.NewResolverServer(reg, rpc.ServerOptions{AuthTokens: cfg.AuthTokens, Obs: cfg.Obs})
	if cfg.TLS != nil {
		lis = tls.NewListener(lis, cfg.TLS)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	var tick <-chan time.Time
	if cfg.Checkpoint > 0 && (m.store != nil || (cfg.Tenants != nil && cfg.Tenants.Dir != "")) {
		ticker := time.NewTicker(cfg.Checkpoint)
		defer ticker.Stop()
		tick = ticker.C
	}
	var evict <-chan time.Time
	if cfg.Tenants != nil && cfg.Tenants.IdleAfter > 0 {
		period := max(cfg.Tenants.IdleAfter/4, 10*time.Millisecond)
		evicter := time.NewTicker(period)
		defer evicter.Stop()
		evict = evicter.C
	}

	// drain shuts the server down, writes every tenant's final checkpoint,
	// and folds any earlier checkpoint error in — shared by the ctx-cancel
	// path and the listener-failure path, so mined state is never lost to
	// either. The drain context bounds BOTH halves: a hung store write
	// counts against the same DrainTimeout as the connection drain.
	var ckptErr error
	drain := func(cause error) error {
		dctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(dctx)
		// Flush every replication stream before the final checkpoints so a
		// clean shutdown leaves every follower holding everything the
		// primary acked.
		reg.closeReplicators()
		if serr := reg.drainAll(dctx); serr != nil && err == nil {
			err = serr
		}
		if cause != nil {
			return cause
		}
		if err == nil {
			err = ckptErr
		}
		return err
	}
	for {
		select {
		case <-tick:
			err := reg.checkpointAll()
			if err != nil && ckptErr == nil {
				ckptErr = err
			}
		case <-evict:
			reg.evictIdle()
		case err := <-serveErr:
			// Listener failure without a shutdown: drain the open
			// connections and checkpoint anyway, then surface the cause.
			return drain(err)
		case <-ctx.Done():
			err := drain(nil)
			<-serveErr
			return err
		}
	}
}
