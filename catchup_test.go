package farmer_test

// Delta catch-up integration: a follower restarted from its own on-disk
// checkpoint is caught up by the primary replaying just the records it
// missed (MsgCatchupDelta) instead of shipping a full snapshot — and falls
// back to the full snapshot automatically when its position is outside the
// primary's resumable tail.

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"farmer"
)

// serveLog is a concurrency-safe Logf sink the catch-up tests assert on.
type serveLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *serveLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *serveLog) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, sub) {
			return true
		}
	}
	return false
}

func (l *serveLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

func waitForLog(t *testing.T, l *serveLog, sub string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !l.contains(sub) {
		if time.Now().After(deadline) {
			t.Fatalf("log line %q never appeared; got %q", sub, l.all())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowerDeltaCatchupOnRestart: a replicated pair drains cleanly, both
// sides restart from their checkpoints, and the follower — whose position
// matches the primary's — reattaches via delta replay, never receiving a
// full snapshot. The reattached pair then keeps replicating.
func TestFollowerDeltaCatchupOnRestart(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(6000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()
	dir := t.TempDir()
	fWAL := filepath.Join(dir, "follower.wal")
	pWAL := filepath.Join(dir, "primary.wal")

	// Generation 1: populate both stores through a replicated pair.
	f1, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(fWAL))
	if err != nil {
		t.Fatal(err)
	}
	fAddr, fStop := startServe(t, f1, farmer.ServeConfig{Follower: true})
	p1, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(pWAL))
	if err != nil {
		t.Fatal(err)
	}
	pAddr, pStop := startServe(t, p1, farmer.ServeConfig{ReplicateTo: []string{fAddr}})

	client, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.FeedBatch(ctx, tr.Records[:4000]); err != nil {
		t.Fatal(err)
	}
	client.Close()
	// Primary drains first so the follower holds every acked record, then
	// the follower drains and checkpoints them into its own store.
	if err := pStop(); err != nil {
		t.Fatal(err)
	}
	p1.Close()
	if err := fStop(); err != nil {
		t.Fatal(err)
	}
	f1.Close()

	// Generation 2: both restart from disk. The follower's checkpoint puts
	// it exactly at the primary's position, so the attach must run as a
	// delta replay — no snapshot install.
	var flog, plog serveLog
	f2, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(fWAL), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	fAddr2, fStop2 := startServe(t, f2, farmer.ServeConfig{Follower: true, Logf: flog.logf})
	defer fStop2()
	p2, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(pWAL), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	pAddr2, pStop2 := startServe(t, p2, farmer.ServeConfig{ReplicateTo: []string{fAddr2}, Logf: plog.logf})
	defer pStop2()

	waitForLog(t, &plog, "caught up and attached")
	if !flog.contains("caught up from primary by delta replay to position 4000") {
		t.Fatalf("follower did not catch up by delta replay: %q", flog.all())
	}
	if flog.contains("caught up from primary at position") {
		t.Fatalf("follower received a full snapshot despite a resumable checkpoint: %q", flog.all())
	}

	// The reattached pair replicates the rest of the stream.
	client2, err := farmer.Dial(ctx, pAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if err := client2.FeedBatch(ctx, tr.Records[4000:]); err != nil {
		t.Fatal(err)
	}
	fclient, err := farmer.Dial(ctx, fAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer fclient.Close()
	st, err := fclient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("follower fed %d after delta reattach, want %d", st.Fed, len(tr.Records))
	}
}

// TestFollowerCatchupFallsBackToFullWhenStale: a follower whose checkpoint
// is BEHIND the restarted primary's resumable tail cannot be caught up by
// replay — the attach must fall back to the full snapshot (resetting the
// follower's stale loaded state) and end with the follower current.
func TestFollowerCatchupFallsBackToFullWhenStale(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(6000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()
	dir := t.TempDir()
	fWAL := filepath.Join(dir, "follower.wal")
	pWAL := filepath.Join(dir, "primary.wal")

	// Generation 1: replicate 3000 records, then lose the follower and keep
	// the primary mining alone to 4500 — the follower's checkpoint is now
	// 1500 records stale.
	f1, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(fWAL))
	if err != nil {
		t.Fatal(err)
	}
	fAddr, fStop := startServe(t, f1, farmer.ServeConfig{Follower: true})
	p1, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(pWAL))
	if err != nil {
		t.Fatal(err)
	}
	pAddr, pStop := startServe(t, p1, farmer.ServeConfig{ReplicateTo: []string{fAddr}})

	client, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.FeedBatch(ctx, tr.Records[:3000]); err != nil {
		t.Fatal(err)
	}
	if err := fStop(); err != nil {
		t.Fatal(err)
	}
	f1.Close()
	// The next batch detaches the dead follower; the primary keeps serving.
	if err := client.FeedBatch(ctx, tr.Records[3000:4500]); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := pStop(); err != nil {
		t.Fatal(err)
	}
	p1.Close()

	// Generation 2: the restarted primary's resumable tail starts at its
	// own position (4500); the follower resumes at 3000, outside it.
	var flog serveLog
	f2, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(fWAL), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	fAddr2, fStop2 := startServe(t, f2, farmer.ServeConfig{Follower: true, Logf: flog.logf})
	defer fStop2()
	var plog serveLog
	p2, err := farmer.Open(cfg, farmer.WithShards(2), farmer.WithStore(pWAL), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	pAddr2, pStop2 := startServe(t, p2, farmer.ServeConfig{ReplicateTo: []string{fAddr2}, Logf: plog.logf})
	defer pStop2()

	waitForLog(t, &plog, "caught up and attached")
	if !flog.contains("caught up from primary at position 4500") {
		t.Fatalf("stale follower was not bootstrapped by a full snapshot: %q", flog.all())
	}
	if flog.contains("delta replay") {
		t.Fatalf("stale follower was offered a delta it cannot replay: %q", flog.all())
	}

	// The pair is live again: replicate the rest and verify the follower
	// holds the whole stream.
	client2, err := farmer.Dial(ctx, pAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if err := client2.FeedBatch(ctx, tr.Records[4500:]); err != nil {
		t.Fatal(err)
	}
	fclient, err := farmer.Dial(ctx, fAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer fclient.Close()
	st, err := fclient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("follower fed %d after full fallback, want %d", st.Fed, len(tr.Records))
	}
}
