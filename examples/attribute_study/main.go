// Attribute study: which semantic attributes (and combinations) contribute
// most to correlation mining? Reproduces the paper's §5.2.2 investigation in
// miniature, printing the hit ratio per attribute combination on an
// HP-style workload.
package main

import (
	"fmt"
	"log"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func main() {
	workload := tracegen.HP(25000).MustGenerate()
	cfg := hust.DefaultReplayConfig()

	attrs := []vsm.Attr{vsm.AttrUser, vsm.AttrProcess, vsm.AttrHost, vsm.AttrPath}
	combos := vsm.Combinations(attrs)

	fmt.Println("hit ratio per attribute combination (HP workload, p=0.7, max_strength=0.4):")
	var bestMask vsm.Mask
	bestHit := -1.0
	for _, mask := range combos {
		mask := mask
		res, err := hust.Replay(workload, cfg, func(e *sim.Engine) (*hust.MDS, error) {
			mc := core.DefaultConfig()
			mc.Mask = mask
			return hust.NewMDS(e, cfg.MDS, nil, predictors.NewFPA(core.New(mc)))
		})
		if err != nil {
			log.Fatal(err)
		}
		hit := res.Stats.Cache.HitRatio()
		fmt.Printf("  %-44s %.4f\n", mask, hit)
		if hit > bestHit {
			bestHit, bestMask = hit, mask
		}
	}
	fmt.Printf("\nmost effective combination: %v (hit ratio %.4f)\n", bestMask, bestHit)
}
