// Security & reliability: propagate access rules along mined correlations
// and form atomic replica groups (paper §4.3).
package main

import (
	"fmt"
	"log"

	"farmer/internal/core"
	"farmer/internal/replica"
	"farmer/internal/security"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func main() {
	workload := tracegen.HP(20000).MustGenerate()
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(workload.HasPaths)
	model := core.New(cfg)
	model.FeedTrace(workload)

	// --- FARMER-enabled security: rule propagation -----------------------
	mgr, err := security.NewManager(model, security.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Pick the file with the strongest correlations.
	var hot trace.FileID
	best := 0
	for f := 0; f < workload.FileCount; f++ {
		if n := len(model.CorrelatorList(trace.FileID(f))); n > best {
			hot, best = trace.FileID(f), n
		}
	}
	reached := mgr.Install(hot, security.Rule{
		Principal: 42, Action: security.ActionWrite, Effect: security.Deny,
	})
	fmt.Printf("deny-write rule installed on file %d\n", hot)
	fmt.Printf("automatically propagated to %d correlated files: %v\n", len(reached), clip(reached, 8))
	fmt.Printf("user 42 write on file %d allowed? %v\n", hot, mgr.Allowed(hot, 42, security.ActionWrite))
	if len(reached) > 0 {
		fmt.Printf("user 42 write on correlated file %d allowed? %v\n",
			reached[0], mgr.Allowed(reached[0], 42, security.ActionWrite))
	}
	fmt.Printf("secure-delete closure of file %d: %d files\n\n", hot, len(mgr.SecureDeleteSet(hot)))

	// --- FARMER-enabled reliability: atomic replica groups ---------------
	rmgr := replica.NewManager()
	if err := rmgr.BuildGroups(model, workload.FileCount, 0.4); err != nil {
		log.Fatal(err)
	}
	g, _ := rmgr.GroupOf(hot)
	members := rmgr.Members(g)
	fmt.Printf("replica groups: %d (hot file's group has %d members)\n", rmgr.Groups(), len(members))
	v, err := rmgr.Backup(g)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := rmgr.Recover(g, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("atomic backup v%d captured and recovered %d files together\n", v, len(restored))
}

func clip(ids []trace.FileID, n int) []trace.FileID {
	if len(ids) <= n {
		return ids
	}
	return ids[:n]
}
