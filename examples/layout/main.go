// Layout: use mined correlations to group small files contiguously
// (paper §4.2) and quantify how batched sequential I/O beats per-file
// random reads on the correlated workload.
package main

import (
	"fmt"
	"log"

	"farmer/internal/core"
	"farmer/internal/layout"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func main() {
	workload := tracegen.HP(30000).MustGenerate()

	// Mine correlations.
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(workload.HasPaths)
	model := core.New(cfg)
	model.FeedTrace(workload)

	// Per-file sizes from the trace (paper: workstation files average
	// 108–189 KB).
	sizeOf := make([]int64, workload.FileCount)
	for i := range workload.Records {
		r := &workload.Records[i]
		if int64(r.Size) > sizeOf[r.File] {
			sizeOf[r.File] = int64(r.Size)
		}
	}
	sizes := func(f trace.FileID) int64 {
		if s := sizeOf[f]; s > 0 {
			return s
		}
		return 64 << 10
	}

	plan, err := layout.Build(model, workload.FileCount, sizes, layout.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	multi, maxGroup := 0, 0
	for _, g := range plan.Groups {
		if len(g.Files) > 1 {
			multi++
		}
		if len(g.Files) > maxGroup {
			maxGroup = len(g.Files)
		}
	}
	fmt.Printf("placement: %d groups (%d multi-file, largest %d files)\n",
		len(plan.Groups), multi, maxGroup)

	var accesses []trace.FileID
	for i := range workload.Records {
		accesses = append(accesses, workload.Records[i].File)
	}
	dm := layout.DefaultDiskModel()
	grouped := dm.Cost(accesses, sizes, plan)
	random := dm.Cost(accesses, sizes, nil)

	fmt.Printf("\n%-22s %12s %14s\n", "data layout", "disk I/Os", "total time")
	fmt.Printf("%-22s %12d %14v\n", "per-file (random)", random.IOs, random.Time)
	fmt.Printf("%-22s %12d %14v\n", "correlation groups", grouped.IOs, grouped.Time)
	fmt.Printf("\nbatched layout: %.1fx fewer I/Os, %.1f%% less time\n",
		float64(random.IOs)/float64(grouped.IOs),
		100*(1-float64(grouped.Time)/float64(random.Time)))
}
