// Quickstart: mine file correlations from a synthetic workload with the
// public API and ask the model for prefetch candidates.
package main

import (
	"fmt"
	"log"

	"farmer"
)

func main() {
	// Generate a small HP-style workload (236-user time-sharing server with
	// full path attributes).
	workload, err := farmer.Generate(farmer.HP(20000))
	if err != nil {
		log.Fatal(err)
	}

	// Build a FARMER model with the paper's parameters (p = 0.7,
	// max_strength = 0.4, IPA path handling) adapted to the trace schema.
	model := farmer.New(farmer.ConfigFor(workload))

	// Stage 1-4 run incrementally, one request at a time.
	for i := range workload.Records {
		model.Feed(&workload.Records[i])
	}

	// Inspect the mined knowledge: pick the busiest file and show its
	// Correlator List.
	counts := map[farmer.FileID]int{}
	for i := range workload.Records {
		counts[workload.Records[i].File]++
	}
	var hot farmer.FileID
	best := 0
	for f, c := range counts {
		if c > best {
			hot, best = f, c
		}
	}

	fmt.Printf("workload: %d records over %d files\n", workload.Len(), workload.FileCount)
	fmt.Printf("hottest file: %d (%d accesses)\n\n", hot, best)
	fmt.Println("Correlator List (successor, degree = 0.7*sim + 0.3*freq):")
	for _, c := range model.CorrelatorList(hot) {
		fmt.Printf("  file %-6d degree %.3f  (sim %.3f, freq %.3f)\n", c.File, c.Degree, c.Sim, c.Freq)
	}

	fmt.Println("\nprefetch candidates (top 4):", model.Predict(hot, 4))

	st := model.Stats()
	fmt.Printf("\nmodel footprint: %d files tracked, %d correlators, %.2f MB\n",
		st.TrackedFiles, st.Correlators, float64(st.MemoryBytes)/(1<<20))
}
