// Prefetching: run the FARMER-enabled prefetching algorithm (FPA) against
// Nexus and plain LRU on the simulated HUSt metadata server — the paper's
// §5 case study in one program.
package main

import (
	"fmt"
	"log"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func main() {
	workload := tracegen.HP(40000).MustGenerate()
	cfg := hust.DefaultReplayConfig()

	type policy struct {
		name    string
		factory func(*sim.Engine) (*hust.MDS, error)
	}
	policies := []policy{
		{"FARMER", func(e *sim.Engine) (*hust.MDS, error) {
			mc := core.DefaultConfig()
			mc.Mask = vsm.DefaultMask(workload.HasPaths)
			return hust.NewMDS(e, cfg.MDS, nil, predictors.NewFPA(core.New(mc)))
		}},
		{"Nexus", func(e *sim.Engine) (*hust.MDS, error) {
			return hust.NewMDS(e, cfg.MDS, nil, predictors.NewNexus(predictors.DefaultNexusConfig()))
		}},
		{"LRU", func(e *sim.Engine) (*hust.MDS, error) {
			return hust.NewMDS(e, cfg.MDS, nil, predictors.NewNone())
		}},
	}

	fmt.Printf("%-8s %10s %10s %14s %12s\n", "policy", "hit ratio", "accuracy", "avg response", "p95")
	var lruResp, farmerResp float64
	for _, p := range policies {
		res, err := hust.Replay(workload, cfg, p.factory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.4f %10.4f %14v %12v\n",
			p.name,
			res.Stats.Cache.HitRatio(),
			res.Stats.Cache.PrefetchAccuracy(),
			res.Stats.AvgResponse,
			res.Stats.P95Response)
		switch p.name {
		case "FARMER":
			farmerResp = float64(res.Stats.AvgResponse)
		case "LRU":
			lruResp = float64(res.Stats.AvgResponse)
		}
	}
	if lruResp > 0 {
		fmt.Printf("\nFARMER reduces average MDS response time by %.1f%% vs LRU\n",
			100*(1-farmerResp/lruResp))
	}
}
