package farmer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/core"
	"farmer/internal/obs"
	"farmer/internal/replica"
	"farmer/internal/rpc"
)

// Miner is the public mining surface this package's deployments share: the
// in-process miner Open returns and the remote client Dial returns both
// implement it, so prediction services, replay harnesses and experiment
// drivers are written once against the interface and run against either.
//
// Every blocking call takes a context.Context; local implementations only
// consult it for cancellation, the remote one threads it through the wire
// round trip. All methods are safe for concurrent use.
type Miner interface {
	// Feed ingests one file request through the four-stage pipeline.
	Feed(ctx context.Context, r *Record) error
	// FeedBatch ingests a batch; local miners mine it with all shards in
	// parallel, the remote client ships it as one frame.
	FeedBatch(ctx context.Context, records []Record) error
	// Predict returns up to k successors of f in decreasing correlation
	// degree — the prefetch candidates for a demand access to f.
	Predict(ctx context.Context, f FileID, k int) ([]FileID, error)
	// Stats returns the miner's footprint snapshot.
	Stats(ctx context.Context) (ModelStats, error)
	// Save checkpoints the mined state into the miner's configured store.
	Save(ctx context.Context) error
	// Load restores mined state from the miner's configured store.
	Load(ctx context.Context) error
	// Close releases the miner's resources (store, pipeline, connection).
	Close() error
}

// ErrNoStore is returned by Save/Load on a miner opened without WithStore.
var ErrNoStore = errors.New("farmer: miner has no store configured (use WithStore)")

// openConfig collects Open's option state.
type openConfig struct {
	shards      int
	shardsSet   bool
	part        Partitioner
	storePath   string
	loadStore   bool
	prefetch    bool
	pfSink      PrefetchSink
	pfCfg       PrefetchConfig
	readStripes int
	obs         *obs.Registry
}

// Option configures Open.
type Option func(*openConfig) error

// WithShards stripes the miner across n concurrent partitions, overriding
// Config.Shards (0 and 1 both mean the paper-exact single-lock path).
func WithShards(n int) Option {
	return func(oc *openConfig) error {
		if n < 0 {
			return fmt.Errorf("farmer: WithShards(%d): negative shard count", n)
		}
		oc.shards = n
		oc.shardsSet = true
		return nil
	}
}

// WithPartitioner selects the function routing files to shards — the
// composition a multi-server deployment uses so each server's shard holds
// exactly the files the cluster routes to it. Requires WithShards (or
// Config.Shards) >= 1; nil restores the default StripePartitioner.
func WithPartitioner(p Partitioner) Option {
	return func(oc *openConfig) error {
		oc.part = p
		return nil
	}
}

// WithStore backs the miner with a persistent store whose write-ahead log
// lives at path: Save checkpoints into it, Load restores from it. An empty
// path is an error — omit the option for a storeless miner.
func WithStore(path string) Option {
	return func(oc *openConfig) error {
		if path == "" {
			return errors.New("farmer: WithStore: empty path")
		}
		oc.storePath = path
		return nil
	}
}

// WithLoad makes Open restore persisted state (if any) from the WithStore
// store before returning — the usual daemon-restart composition.
func WithLoad() Option {
	return func(oc *openConfig) error {
		oc.loadStore = true
		return nil
	}
}

// WithReadStripes fronts the miner's Predict/CorrelatorList read path with a
// striped materialized Correlator-List snapshot spread over n lock stripes:
// reads served from the snapshot never touch the shard locks mining holds,
// and every list change invalidates its snapshot entry, so reads still see
// either the current list or the owning shard — never stale data. n is
// rounded up to a power of two; 0 (the default) disables the snapshot and
// reads go straight to the shards, the right choice for single-threaded
// replay. Negative n is an error.
func WithReadStripes(n int) Option {
	return func(oc *openConfig) error {
		if n < 0 {
			return fmt.Errorf("farmer: WithReadStripes(%d): negative stripe count", n)
		}
		oc.readStripes = n
		return nil
	}
}

// WithPrefetcher attaches the asynchronous Predict/prefetch pipeline at
// open: post-ingest events flow through per-shard taps into a bounded
// candidate queue feeding sink, and the pipeline drains on Close. A nil
// sink discards candidates (the pipeline still predicts and accounts).
func WithPrefetcher(sink PrefetchSink, cfg PrefetchConfig) Option {
	return func(oc *openConfig) error {
		if cfg.K < 0 || cfg.QueueCap < 0 || cfg.TapBuffer < 0 {
			return fmt.Errorf("farmer: WithPrefetcher: negative tuning (K=%d, QueueCap=%d, TapBuffer=%d)",
				cfg.K, cfg.QueueCap, cfg.TapBuffer)
		}
		oc.prefetch = true
		oc.pfSink = sink
		oc.pfCfg = cfg
		return nil
	}
}

// WithObs registers the miner's live metrics into reg: ingest position,
// model footprint, per-shard tap mailbox depth and drops, checkpoint
// age/epoch and full-vs-delta counts, and (with WithPrefetcher) prediction
// hit/accuracy. Metric updates on the hot path are free — everything the
// registry reads is an atomic or a callback sampled only at scrape time.
// A nil registry is allowed and equivalent to omitting the option.
func WithObs(reg *MetricsRegistry) Option {
	return func(oc *openConfig) error {
		oc.obs = reg
		return nil
	}
}

// LocalMiner is the in-process Miner: a ShardedModel, optionally backed by
// a persistent store and an attached async prefetch pipeline. Beyond the
// Miner interface it exposes the concrete read surface (CorrelatorList,
// Sharded) that servers and tests need.
type LocalMiner struct {
	sm    *ShardedModel
	lc    *core.ListCache // nil without WithReadStripes
	store *Store
	pf    *Prefetcher

	gmu    sync.Mutex       // guards groups creation
	groups *replica.Manager // lazily created replica-group manager (§4.3)

	ckptMu        sync.Mutex
	ckptSinceFull int // incremental checkpoints since the last full one

	// Checkpoint observability: always counted (the MsgObs row needs the
	// numbers whether or not a registry is attached); the padded counters
	// cost one uncontended add per checkpoint. lastCkptMS is the unix-ms
	// completion time of the last checkpoint (0 = never). ckptDur is nil
	// without WithObs.
	ckptFull   obs.Counter
	ckptDelta  obs.Counter
	lastCkptMS atomic.Int64
	ckptDur    *obs.Histogram

	obsReg *obs.Registry // nil unless WithObs / AttachMetrics

	closeOnce sync.Once
	closeErr  error
}

var _ Miner = (*LocalMiner)(nil)

// Open creates an in-process miner. Unlike the deprecated New/NewSharded it
// returns errors — an invalid configuration, a bad option, or a store that
// fails to open (including a corrupt write-ahead log) — instead of
// panicking.
func Open(cfg Config, opts ...Option) (*LocalMiner, error) {
	var oc openConfig
	for _, opt := range opts {
		if err := opt(&oc); err != nil {
			return nil, err
		}
	}
	if oc.loadStore && oc.storePath == "" {
		return nil, errors.New("farmer: WithLoad requires WithStore")
	}
	if oc.shardsSet {
		cfg.Shards = oc.shards
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("farmer: invalid config: %w", err)
	}
	owners := cfg.Shards
	if owners < 1 {
		owners = 1
	}
	m := &LocalMiner{sm: core.NewShardedPartitioned(cfg, owners, oc.part)}
	if oc.readStripes > 0 {
		// Register before anything feeds or loads, so every list change —
		// checkpoint installs included — reaches the snapshot's hook.
		m.lc = core.NewListCache(m.sm, oc.readStripes)
	}
	if oc.storePath != "" {
		store, err := OpenStore(oc.storePath)
		if err != nil {
			return nil, fmt.Errorf("farmer: opening store: %w", err)
		}
		m.store = store
		if oc.loadStore && store.Len() > 0 {
			if err := m.sm.LoadMerged(store); err != nil {
				store.Close()
				return nil, fmt.Errorf("farmer: loading store: %w", err)
			}
		}
	}
	if oc.prefetch {
		m.pf = StartPrefetcher(m.sm, oc.pfSink, oc.pfCfg)
	}
	if oc.obs != nil {
		m.AttachMetrics(oc.obs)
	}
	return m, nil
}

// AttachMetrics registers the miner's live metrics into reg — the body of
// WithObs, callable after Open for compositions (like Serve) that build
// the registry later. Attaching twice, or attaching nil, is a no-op.
func (m *LocalMiner) AttachMetrics(reg *MetricsRegistry) {
	if reg == nil || m.obsReg != nil {
		return
	}
	m.obsReg = reg
	m.ckptDur = reg.Histogram("farmer_checkpoint_duration_ms")
	reg.CounterFunc("farmer_ingest_records_total", func() float64 { return float64(m.sm.Fed()) })
	// The footprint estimate walks every list and vector under the model
	// read locks — O(model), not O(1) like every other series here. Cache
	// it briefly so a scrape storm cannot turn into a read-lock storm
	// against the ingest path.
	var memMu sync.Mutex
	var memAt time.Time
	var memVal float64
	reg.GaugeFunc("farmer_model_memory_bytes", func() float64 {
		memMu.Lock()
		defer memMu.Unlock()
		if memAt.IsZero() || time.Since(memAt) > 2*time.Second {
			memVal = float64(m.sm.Stats().MemoryBytes)
			memAt = time.Now()
		}
		return memVal
	})
	reg.GaugeEach("farmer_shard_mailbox_depth", func(emit obs.EmitFunc) {
		for i, sh := range m.sm.ShardObs() {
			emit([]obs.Label{obs.L("shard", fmt.Sprint(i))}, float64(sh.MailboxDepth))
		}
	})
	reg.CounterEach("farmer_tap_dropped_total", func(emit obs.EmitFunc) {
		for i, sh := range m.sm.ShardObs() {
			emit([]obs.Label{obs.L("shard", fmt.Sprint(i))}, float64(sh.Dropped))
		}
	})
	reg.CounterFunc("farmer_checkpoint_full_total", func() float64 { return float64(m.ckptFull.Load()) })
	reg.CounterFunc("farmer_checkpoint_delta_total", func() float64 { return float64(m.ckptDelta.Load()) })
	reg.GaugeFunc("farmer_checkpoint_epoch", func() float64 { return float64(m.sm.SaveEpoch()) })
	reg.GaugeFunc("farmer_checkpoint_age_seconds", func() float64 {
		last := m.lastCkptMS.Load()
		if last == 0 {
			return -1 // never checkpointed
		}
		return float64(time.Now().UnixMilli()-last) / 1000
	})
	if m.pf != nil {
		reg.CounterFunc("farmer_predict_predictions_total", func() float64 { return float64(m.pf.Stats().Predicted) })
		reg.CounterFunc("farmer_predict_hits_total", func() float64 { return float64(m.pf.Stats().Hits) })
		reg.GaugeFunc("farmer_predict_accuracy", func() float64 { return m.pf.Stats().Accuracy() })
		reg.CounterFunc("farmer_prefetch_submitted_total", func() float64 { return float64(m.pf.Stats().Submitted) })
		reg.CounterFunc("farmer_prefetch_queue_dropped_total", func() float64 { return float64(m.pf.Stats().QueueDropped) })
	}
}

// Metrics returns the attached registry, nil without WithObs.
func (m *LocalMiner) Metrics() *MetricsRegistry { return m.obsReg }

// obsRow builds the miner's slice of a MsgObs response: footprint, tap
// health, checkpoint history, prediction accuracy, and the top-k correlated
// groups by strength. The rpc layer stamps wire-level fields (feed counts,
// replication lag) on top.
func (m *LocalMiner) obsRow(topK int) rpc.TenantObs {
	st := m.sm.Stats()
	row := rpc.TenantObs{
		Fed:         st.Fed,
		MemoryBytes: uint64(st.MemoryBytes),
		TapDepth:    uint64(st.TapDepth),
		TapDropped:  st.TapDropped,
		CkptEpoch:   m.sm.SaveEpoch(),
		CkptFull:    m.ckptFull.Load(),
		CkptDelta:   m.ckptDelta.Load(),
		CkptAgeMS:   rpc.NeverCheckpointed,
	}
	if last := m.lastCkptMS.Load(); last > 0 {
		if age := time.Now().UnixMilli() - last; age >= 0 {
			row.CkptAgeMS = uint64(age)
		}
	}
	if m.pf != nil {
		ps := m.pf.Stats()
		row.PredPredicted, row.PredHits = ps.Predicted, ps.Hits
	}
	for _, g := range m.sm.TopGroups(topK) {
		row.Groups = append(row.Groups, rpc.ObsGroup{Seed: g.Seed, Strength: g.Strength, Files: g.Files})
	}
	return row
}

// Feed implements Miner.
func (m *LocalMiner) Feed(ctx context.Context, r *Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.sm.Feed(r)
	return nil
}

// FeedBatch implements Miner; all shards mine the batch in parallel.
func (m *LocalMiner) FeedBatch(ctx context.Context, records []Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.sm.FeedBatch(records)
	return nil
}

// Predict implements Miner, serving from the read-stripe snapshot when one
// is attached (WithReadStripes) and from the owning shard otherwise.
func (m *LocalMiner) Predict(ctx context.Context, f FileID, k int) ([]FileID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m.lc != nil {
		return m.lc.Predict(f, k), nil
	}
	return m.sm.Predict(f, k), nil
}

// Stats implements Miner.
func (m *LocalMiner) Stats(ctx context.Context) (ModelStats, error) {
	if err := ctx.Err(); err != nil {
		return ModelStats{}, err
	}
	return m.sm.Stats(), nil
}

// saveToStore is the checkpoint-body seam so tests can stand in a blocking
// store write and prove Save honors its context. nil (the default) means
// the real body, LocalMiner.checkpoint.
var saveToStore func(sm *ShardedModel, st *Store) error

// fullCheckpointEvery forces every Nth checkpoint full — with a WAL
// compaction behind it — even when a delta would be valid. Deltas append to
// the write-ahead log, so without a periodic full anchor the log would grow
// by one delta per checkpoint forever; with it, the store stays within a
// bounded multiple of one live-state copy.
const fullCheckpointEvery = 16

// checkpoint writes the cheapest valid checkpoint: the dirty-key delta
// (core.ShardedModel.SaveCheckpoint) most of the time — O(records mined
// since the last save), not O(model) — and a full rewrite plus compaction
// on the first save, every fullCheckpointEvery-th save, or whenever the
// store's epoch says a delta would not be safe.
func (m *LocalMiner) checkpoint(sm *ShardedModel, st *Store) error {
	start := time.Now()
	m.ckptMu.Lock()
	forceFull := m.ckptSinceFull >= fullCheckpointEvery-1
	m.ckptMu.Unlock()
	var (
		incremental bool
		err         error
	)
	if forceFull {
		err = sm.SaveMerged(st)
	} else {
		incremental, err = sm.SaveCheckpoint(st)
	}
	if err != nil {
		return err
	}
	m.ckptMu.Lock()
	if incremental {
		m.ckptSinceFull++
	} else {
		m.ckptSinceFull = 0
	}
	m.ckptMu.Unlock()
	if incremental {
		m.ckptDelta.Inc()
	} else {
		m.ckptFull.Inc()
	}
	m.lastCkptMS.Store(time.Now().UnixMilli())
	m.ckptDur.Observe(uint64(time.Since(start).Milliseconds()))
	if incremental {
		return nil
	}
	return st.Compact()
}

// Save implements Miner: checkpoint into the WithStore store — incremental
// when the dirty sets allow it, a full SaveMerged plus write-ahead-log
// compaction otherwise — so repeated checkpoints (farmerd -checkpoint) cost
// O(changed keys) and the store stays at roughly one copy of the live state
// instead of growing by one copy per save.
//
// ctx bounds the WHOLE checkpoint, not just its start: a store write that
// hangs (a wedged disk, an NFS stall) returns ctx's error when the deadline
// passes instead of wedging the caller — in particular the serve drain,
// whose DrainTimeout used to be ignored by exactly this path. The abandoned
// write keeps holding the miner's dispatch and store locks until it
// unwedges, so an expired Save leaves later checkpoints blocked too — the
// right state for a daemon about to exit, which is the only caller that
// abandons.
func (m *LocalMiner) Save(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.store == nil {
		return ErrNoStore
	}
	done := make(chan error, 1)
	save := saveToStore // capture: the goroutine may outlive a test's seam swap
	if save == nil {
		save = m.checkpoint
	}
	go func() { done <- save(m.sm, m.store) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("farmer: checkpoint abandoned: %w", ctx.Err())
	}
}

// Load implements Miner: LoadMerged from the WithStore store, rebalancing
// onto the current shard count and partitioner. It only restores into a
// fresh miner: LoadMerged overlays state and adds the persisted ingest
// counter, so loading over live mined state would merge models and
// double-count Fed — a miner that has already ingested reports an error
// instead.
func (m *LocalMiner) Load(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.store == nil {
		return ErrNoStore
	}
	if m.sm.Fed() > 0 {
		return fmt.Errorf("farmer: cannot load into a miner that has already ingested %d records", m.sm.Fed())
	}
	return m.sm.LoadMerged(m.store)
}

// CorrelatorList returns a copy of f's sorted Correlator List, serving from
// the read-stripe snapshot when one is attached.
func (m *LocalMiner) CorrelatorList(f FileID) []Correlator {
	if m.lc != nil {
		return m.lc.CorrelatorList(f)
	}
	return m.sm.CorrelatorList(f)
}

// ListCache returns the attached read-stripe snapshot, nil without
// WithReadStripes.
func (m *LocalMiner) ListCache() *core.ListCache { return m.lc }

// Sharded exposes the underlying ensemble for compositions the interface
// does not cover (event taps, DispatchExternal, merged persistence).
func (m *LocalMiner) Sharded() *ShardedModel { return m.sm }

// Prefetcher returns the attached pipeline, nil without WithPrefetcher.
func (m *LocalMiner) Prefetcher() *Prefetcher { return m.pf }

// Close drains the attached prefetch pipeline and closes the store.
// Idempotent.
func (m *LocalMiner) Close() error {
	m.closeOnce.Do(func() {
		if m.pf != nil {
			m.pf.Stop()
		}
		if m.store != nil {
			m.closeErr = m.store.Close()
		}
	})
	return m.closeErr
}
