package farmer_test

import (
	"context"
	"strings"
	"testing"

	"farmer"
)

// TestObsReplicatedEndToEnd drives the whole observability surface through
// the public API on a replicated pair: WithObs registers the miner series,
// Serve adds the replication gauges, MsgObs carries the row to a remote
// client, and after a fully-acked feed the follower lag reads zero.
func TestObsReplicatedEndToEnd(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(6000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()

	follower, err := farmer.Open(cfg, farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServe(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	reg := farmer.NewMetricsRegistry()
	primary, err := farmer.Open(cfg,
		farmer.WithShards(2),
		farmer.WithObs(reg),
		farmer.WithPrefetcher(nil, farmer.PrefetchConfig{K: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if primary.Metrics() != reg {
		t.Fatal("Metrics() did not return the attached registry")
	}
	pAddr, pStop := startServe(t, primary, farmer.ServeConfig{
		Obs:         reg,
		ReplicateTo: []string{fAddr},
	})
	defer pStop()

	client, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.FeedBatch(ctx, tr.Records); err != nil {
		t.Fatal(err)
	}

	rows, err := client.Obs(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("obs returned %d rows, want 1", len(rows))
	}
	row := rows[0]
	if row.Name != "" {
		t.Fatalf("default tenant named %q", row.Name)
	}
	if row.Fed != uint64(len(tr.Records)) {
		t.Fatalf("row.Fed = %d, want %d", row.Fed, len(tr.Records))
	}
	if row.FeedRecords != uint64(len(tr.Records)) || row.FeedFrames == 0 {
		t.Fatalf("wire accounting FeedRecords=%d FeedFrames=%d", row.FeedRecords, row.FeedFrames)
	}
	if row.Followers != 1 {
		t.Fatalf("row.Followers = %d, want 1", row.Followers)
	}
	// The client ack arrives only after the follower acked, so a drained
	// feed leaves zero replication lag.
	if row.ReplLagMax != 0 {
		t.Fatalf("row.ReplLagMax = %d, want 0", row.ReplLagMax)
	}
	if row.CkptAgeMS != farmer.NeverCheckpointed {
		t.Fatalf("memory-only miner reports checkpoint age %d", row.CkptAgeMS)
	}
	if row.MemoryBytes == 0 {
		t.Fatal("row.MemoryBytes = 0 after mining a trace")
	}
	if row.PredPredicted == 0 {
		t.Fatal("prefetcher attached but row.PredPredicted = 0")
	}
	if len(row.Groups) == 0 || len(row.Groups) > 5 {
		t.Fatalf("row.Groups has %d entries, want 1..5", len(row.Groups))
	}
	// Rows agree with the model's own ranking, strongest first.
	want := primary.Sharded().TopGroups(5)
	for i, g := range row.Groups {
		if g.Seed != want[i].Seed || g.Strength != want[i].Strength {
			t.Fatalf("group %d: wire (%d, %v) != model (%d, %v)",
				i, g.Seed, g.Strength, want[i].Seed, want[i].Strength)
		}
	}

	// The same registry renders the replication gauges Serve registered.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	for _, series := range []string{
		"farmer_repl_followers 1",
		`farmer_repl_lag_records{follower="` + fAddr + `"} 0`,
		"farmer_rpc_connections_total",
		"farmer_predict_accuracy",
	} {
		if !strings.Contains(scrape, series) {
			t.Fatalf("scrape missing %q:\n%s", series, scrape)
		}
	}

	// Asking for zero groups is the cheap health-poll shape.
	rows, err = client.Obs(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Groups) != 0 {
		t.Fatalf("topK=0 returned %d groups", len(rows[0].Groups))
	}
}

// TestObsMultiTenantGrantFiltered: MsgObs rows come back sorted (default
// tenant first), stamped with per-tenant wire accounting, and a restricted
// token's view is filtered to its grant exactly like MsgTenants.
func TestObsMultiTenantGrantFiltered(t *testing.T) {
	server, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	reg := farmer.NewMetricsRegistry()
	addr, stop := startServe(t, server, farmer.ServeConfig{
		Obs:     reg,
		Tenants: &farmer.TenantsConfig{Shards: 2},
		AuthTokens: map[string][]string{
			"root-secret":  {"*"},
			"alpha-secret": {"alpha"},
		},
	})
	defer stop()

	ctx := context.Background()
	feed := func(tenant, token string, files ...farmer.FileID) {
		m, err := farmer.Dial(ctx, addr, farmer.WithTenant(tenant), farmer.WithToken(token))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		recs := make([]farmer.Record, len(files))
		for i, f := range files {
			recs[i] = farmer.Record{Seq: uint64(i), File: f, Path: "/d"}
		}
		if err := m.FeedBatch(ctx, recs); err != nil {
			t.Fatal(err)
		}
	}
	feed("alpha", "alpha-secret", 1, 2, 3)
	feed("beta", "root-secret", 7, 8)

	root, err := farmer.Dial(ctx, addr, farmer.WithToken("root-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	rows, err := root.Obs(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range rows {
		names = append(names, r.Name)
	}
	if len(rows) != 3 || rows[0].Name != "" || rows[1].Name != "alpha" || rows[2].Name != "beta" {
		t.Fatalf("root sees %v, want [ alpha beta]", names)
	}
	if rows[1].Fed != 3 || rows[1].FeedRecords != 3 || rows[2].Fed != 2 {
		t.Fatalf("per-tenant counts: alpha Fed=%d FeedRecords=%d, beta Fed=%d",
			rows[1].Fed, rows[1].FeedRecords, rows[2].Fed)
	}

	restricted, err := farmer.Dial(ctx, addr,
		farmer.WithTenant("alpha"), farmer.WithToken("alpha-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer restricted.Close()
	rows, err = restricted.Obs(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "alpha" {
		t.Fatalf("restricted token sees %d rows (first %q), want its one grant", len(rows), rows[0].Name)
	}
}
